// Figure 12: encoding speed versus stripe size (128 KB .. 512 MB) at
// n = r = 16, m in {1, 2, 3}, STAIR s in {1..4} (worst e), SD s in {1..3}.
// A 128 KB stripe means 512-byte symbols — the physical sector size.
//
// Expected shape: speed first rises with stripe size (SIMD efficiency on
// longer regions) and then falls once stripes spill the CPU caches; STAIR
// stays above SD at every size.

#include <iostream>
#include <optional>

#include "bench_util.h"

using namespace stair;
using namespace stair::bench;

int main() {
  const std::size_t n = 16, r = 16;
  std::cout << "=== Figure 12: encoding speed vs stripe size, n = r = 16 ===\n\n";

  const std::vector<std::pair<std::string, std::size_t>> sizes{
      {"128KB", 128u << 10}, {"512KB", 512u << 10}, {"2MB", 2u << 20},
      {"8MB", 8u << 20},     {"32MB", 32u << 20},   {"128MB", 128u << 20},
      {"512MB", 512u << 20}};

  for (std::size_t m : {1, 2, 3}) {
    TablePrinter table("m = " + std::to_string(m) + "  (MB/s)");
    table.set_header({"stripe", "SD s=1", "SD s=2", "SD s=3", "STAIR s=1", "STAIR s=2",
                      "STAIR s=3", "STAIR s=4"});
    for (const auto& [label, bytes] : sizes) {
      std::vector<std::string> row{label};
      const std::size_t symbol = symbol_size_for_stripe(bytes, n, r);
      const std::size_t stripe_bytes = symbol * n * r;
      for (std::size_t s = 1; s <= 3; ++s) {
        const SdCode sd({.n = n, .r = r, .m = m, .s = s});
        SdStripe stripe(sd, symbol);
        row.push_back(format_sig(
            measure_mbps([&] { sd.encode(stripe.regions); }, stripe_bytes), 4));
      }
      for (std::size_t s = 1; s <= 4; ++s) {
        const StairConfig cfg{.n = n, .r = r, .m = m, .e = worst_e_for_s(n, r, m, s, 8)};
        const StairCode code(cfg);
        StripeBuffer stripe = make_encoded_stripe(code, symbol);
        Workspace ws;
        row.push_back(format_sig(
            measure_mbps([&] { code.encode(stripe.view(), EncodingMethod::kAuto, &ws); },
                         stripe_bytes),
            4));
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }

  std::cout << "Shape check: rise-then-fall with stripe size for both codes; the\n"
               "STAIR-over-SD advantage persists at every size (§6.2.1).\n";
  return 0;
}
