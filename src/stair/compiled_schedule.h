// Compiled schedule replay — the hot-path execution format.
//
// Schedule (stair/schedule.h) is the portable description of a coding plan:
// symbol ids and GF coefficients. Replaying one directly re-resolves every
// coefficient on every call and walks each output region twice (zero-fill,
// then per-term XOR passes). CompiledSchedule lowers a Schedule once into the
// form the machine actually wants to run:
//
//  * every coefficient is resolved up front to a cached split-table kernel
//    (gf/kernel.h), so replay performs zero table construction;
//  * the first term of each op overwrites its output (copy-mult) instead of
//    zero-fill + XOR, saving one full pass over every output region;
//  * the whole op list is strip-mined into L2-sized byte strips (region ops
//    are pointwise, so any byte slicing is exact): all terms of an op run
//    back-to-back on a strip while the destination is cache-resident, and
//    inputs reused by later ops are still hot — large stripes stream from
//    DRAM once instead of once per referencing op.
//
// Replay is byte-identical to Schedule::execute on the same symbol table.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gf/kernel.h"
#include "stair/schedule.h"

namespace stair {

class CompiledSchedule {
 public:
  CompiledSchedule() = default;

  /// Lowers `schedule`. `strip_bytes` pins the replay strip size (rounded to
  /// 64-byte granularity; mainly for tests); 0 derives it from the number of
  /// distinct symbols so one strip of every referenced region fits in L2
  /// together (STAIR_STRIP_BYTES overrides the cache budget).
  explicit CompiledSchedule(const Schedule& schedule, std::size_t strip_bytes = 0);

  bool empty() const { return ops_.empty(); }

  /// Resolved Mult_XOR region operations per replay (zero-coefficient terms
  /// are dropped at compile time).
  std::size_t mult_xor_count() const;

  /// Replays over `symbols` — same contract and same bytes as
  /// Schedule::execute on the source schedule.
  void execute(std::span<const std::span<std::uint8_t>> symbols) const;

  /// Replays only bytes [offset, offset + length) of every region. Region
  /// ops are pointwise, so running disjoint ranges (in any order, on any
  /// threads) is byte-identical to one full execute(); this is the parallel
  /// engine's building block — workers share one symbol table instead of
  /// building per-thread sliced copies. `offset` must be a multiple of 64
  /// (keeps every slice symbol-aligned for all w).
  void execute_range(std::span<const std::span<std::uint8_t>> symbols,
                     std::size_t offset, std::size_t length) const;

  /// Distinct symbol ids referenced — the working-set width cache-aware
  /// slicing divides its budget by.
  std::size_t touched_symbols() const { return touched_symbols_; }

 private:
  struct Term {
    std::shared_ptr<const gf::CompiledKernel> kernel;
    std::uint32_t input = 0;
  };
  struct Op {
    std::uint32_t output = 0;
    // True when the op must keep the legacy zero-fill + accumulate order:
    // no surviving terms, or a self-referencing term (input == output).
    bool zero_fill = false;
    std::vector<Term> terms;
  };

  std::size_t strip_size(std::size_t symbol_size) const;

  std::vector<Op> ops_;
  std::size_t forced_strip_ = 0;     // nonzero = caller-pinned strip size
  std::size_t touched_symbols_ = 0;  // distinct symbol ids referenced
};

}  // namespace stair
