// AVX2 backend: this translation unit is compiled with -mavx2 (see the
// per-file flags in CMakeLists.txt), turning the kernels_impl.h bodies into
// vpshufb split-table kernels at 32 bytes per iteration. Only dispatched to
// after a runtime CPUID check.
#include "gf/kernels_impl.h"

#ifndef __AVX2__
#error "kernels_avx2.cpp must be compiled with AVX2 enabled (-mavx2)"
#endif

namespace stair::gf::detail {

KernelFns avx2_kernel_fns() { return impl_kernel_fns(); }

}  // namespace stair::gf::detail
