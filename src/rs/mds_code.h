// Systematic MDS (eta, kappa) codes: standard (Vandermonde) Reed-Solomon and
// Cauchy Reed-Solomon generators, with the one primitive every layer above
// needs — the recovery matrix mapping any kappa known codeword positions to
// any other positions.
//
// STAIR codes instantiate two of these (paper §3): Crow, an
// (n + m', n - m)-code across each stripe row, and Ccol, an
// (r + e_max, r)-code down each chunk.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gf/region.h"
#include "matrix/matrix.h"

namespace stair {

/// A systematic (eta, kappa) MDS code over GF(2^w): kappa data symbols are
/// kept verbatim at codeword positions [0, kappa) and eta - kappa parity
/// symbols follow. Any kappa codeword symbols determine the rest.
class SystematicMdsCode {
 public:
  /// Generator family. Cauchy is the default (used by the paper); the
  /// Vandermonde construction is provided for the "standard RS" variant.
  enum class Kind { kCauchy, kVandermonde };

  /// Builds the code; requires kappa < eta and eta <= 2^w (Cauchy) or
  /// eta <= 2^w (Vandermonde).
  SystematicMdsCode(const gf::Field& f, std::size_t kappa, std::size_t eta,
                    Kind kind = Kind::kCauchy);

  std::size_t kappa() const { return kappa_; }
  std::size_t eta() const { return eta_; }
  std::size_t parity_count() const { return eta_ - kappa_; }
  const gf::Field& field() const { return *field_; }

  /// The kappa x eta generator [I | A]; codeword = data_row * G.
  const Matrix& generator() const { return generator_; }

  /// Coefficients reconstructing arbitrary codeword positions from any kappa
  /// known ones. Returns R (targets.size() x kappa) such that for every
  /// codeword c: c[targets[t]] = sum_j R(t, j) * c[available[j]].
  ///
  /// `available` must list kappa distinct positions; `targets` may list any
  /// positions (including available ones). This is the workhorse behind
  /// encoding, erasure decoding, and STAIR's virtual-symbol computations.
  Matrix recovery_matrix(std::span<const std::size_t> available,
                         std::span<const std::size_t> targets) const;

  // -------------------------------------------------------------------------
  // Region (bulk) interface for direct use as an erasure code. Each symbol is
  // a byte region; all regions must share one size (a multiple of w/8).
  // -------------------------------------------------------------------------

  /// Encodes parity regions from data regions (sizes kappa and eta - kappa).
  void encode(std::span<const std::span<const std::uint8_t>> data,
              std::span<const std::span<std::uint8_t>> parity) const;

  /// Reconstructs the regions at `erased` positions from the kappa regions at
  /// `available` positions. Throws std::invalid_argument on bad shapes.
  void decode(std::span<const std::size_t> available,
              std::span<const std::span<const std::uint8_t>> available_regions,
              std::span<const std::size_t> erased,
              std::span<const std::span<std::uint8_t>> erased_regions) const;

 private:
  const gf::Field* field_;
  std::size_t kappa_, eta_;
  Matrix generator_;
};

}  // namespace stair
