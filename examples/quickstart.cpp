// Quickstart: construct a STAIR code, encode a stripe of real bytes, lose
// two whole devices plus a burst of sectors, and recover everything.
//
//   $ ./quickstart
//
// Walks through the core public API: StairConfig -> StairCode ->
// StripeBuffer -> encode -> decode, with printed intermediate state.

#include <cstdio>
#include <vector>

#include "stair/cost_model.h"
#include "stair/stair_code.h"
#include "util/rng.h"

using namespace stair;

int main() {
  // A RAID-6-like array of 8 devices, 16 sectors per chunk, tolerating two
  // device failures plus a 2-sector burst in one more chunk and a single
  // lost sector in yet another (coverage e = (1, 2)).
  const StairConfig cfg{.n = 8, .r = 16, .m = 2, .e = {1, 2}};
  cfg.validate();
  std::printf("code:        %s\n", cfg.to_string().c_str());
  std::printf("efficiency:  %.1f%% (a traditional code with m + m' = 4 parity\n"
              "             chunks would reach only %.1f%%)\n",
              100.0 * cfg.storage_efficiency(),
              100.0 * (cfg.r * (cfg.n - cfg.m - cfg.m_prime())) / (cfg.r * cfg.n));

  const StairCode code(cfg);
  const EncodingCosts costs = analyze_costs(code);
  std::printf("encoding:    standard=%zu upstairs=%zu downstairs=%zu Mult_XORs -> %s\n",
              costs.standard, costs.upstairs, costs.downstairs,
              costs.best == EncodingMethod::kUpstairs     ? "upstairs"
              : costs.best == EncodingMethod::kDownstairs ? "downstairs"
                                                          : "standard");

  // Fill a stripe with 4 KiB sectors of random data and encode.
  StripeBuffer stripe(code, 4096);
  std::vector<std::uint8_t> original(stripe.data_size());
  Rng rng(2024);
  rng.fill(original);
  stripe.set_data(original);
  code.encode(stripe.view());
  std::printf("encoded:     %zu data + %zu parity symbols of %zu bytes\n",
              code.data_symbol_count(), code.parity_symbol_count(), stripe.symbol_size());

  // Disaster: devices 1 and 6 die; device 3 develops a 2-sector burst and
  // device 5 a single latent sector error.
  std::vector<bool> lost(cfg.n * cfg.r, false);
  for (std::size_t i = 0; i < cfg.r; ++i) {
    lost[i * cfg.n + 1] = true;
    lost[i * cfg.n + 6] = true;
  }
  lost[9 * cfg.n + 3] = lost[10 * cfg.n + 3] = true;  // burst in chunk 3
  lost[4 * cfg.n + 5] = true;                         // lone sector in chunk 5
  std::size_t count = 0;
  for (bool b : lost) count += b;
  Rng garbage(1);
  for (std::size_t idx = 0; idx < lost.size(); ++idx)
    if (lost[idx]) garbage.fill(stripe.view().stored[idx]);
  std::printf("failure:     %zu of %zu stored symbols lost (2 devices + burst + sector)\n",
              count, cfg.n * cfg.r);
  std::printf("coverage ok: %s\n", code.is_recoverable(lost) ? "yes" : "no");

  // Recover and verify byte-for-byte.
  if (!code.decode(stripe.view(), lost)) {
    std::printf("decode FAILED\n");
    return 1;
  }
  std::vector<std::uint8_t> recovered(stripe.data_size());
  stripe.get_data(recovered);
  std::printf("recovered:   %s\n", recovered == original ? "all data intact" : "MISMATCH");
  return recovered == original ? 0 : 1;
}
