// throughput_demo: measure encode and worst-case decode throughput for a
// user-supplied configuration, the way §6.2 evaluates codes.
//
//   $ ./throughput_demo [n=16] [r=16] [m=2] [e=1,2] [stripe_mb=32]
//
// Prints the Mult_XOR cost of all three encoding methods, which one the code
// auto-selects, and measured MB/s for encode and for the worst-case erasure
// pattern decode.

#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "stair/codec.h"
#include "stair/cost_model.h"
#include "stair/stair_code.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

using namespace stair;

namespace {

std::vector<std::size_t> parse_e(const char* arg) {
  std::vector<std::size_t> e;
  std::string s(arg);
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    e.push_back(std::strtoull(s.substr(pos, next - pos).c_str(), nullptr, 10));
    pos = next + 1;
  }
  return e;
}

double measure(const std::function<void()>& fn, std::size_t bytes) {
  fn();  // warm up, build schedules
  Stopwatch watch;
  int iters = 0;
  do {
    fn();
    ++iters;
  } while (iters < 3 || watch.elapsed_seconds() < 0.3);
  return bytes * static_cast<double>(iters) / watch.elapsed_seconds() / (1024 * 1024);
}

}  // namespace

int main(int argc, char** argv) {
  StairConfig cfg{.n = 16, .r = 16, .m = 2, .e = {1, 2}};
  if (argc > 1) cfg.n = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) cfg.r = std::strtoull(argv[2], nullptr, 10);
  if (argc > 3) cfg.m = std::strtoull(argv[3], nullptr, 10);
  if (argc > 4) cfg.e = parse_e(argv[4]);
  const std::size_t stripe_mb = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 32;
  cfg.w = std::max(cfg.minimum_w(), 8);
  cfg.validate();

  // All measurement runs through one codec session: schedules, decode plans,
  // and workspaces are session-amortized exactly as a serving system would.
  Codec codec(cfg);
  const StairCode& code = codec.code();
  std::printf("%s over GF(2^%d)\n", cfg.to_string().c_str(), cfg.w);
  std::printf("storage efficiency %.2f%%, %.3f devices saved vs traditional codes\n\n",
              100 * cfg.storage_efficiency(), cfg.devices_saved());

  const EncodingCosts costs = analyze_costs(code);
  std::printf("Mult_XORs/stripe: standard=%zu upstairs=%zu downstairs=%zu -> auto picks %s\n",
              costs.standard, costs.upstairs, costs.downstairs,
              costs.best == EncodingMethod::kUpstairs     ? "upstairs"
              : costs.best == EncodingMethod::kDownstairs ? "downstairs"
                                                          : "standard");

  std::size_t symbol = (stripe_mb << 20) / (cfg.n * cfg.r);
  symbol -= symbol % 16;
  if (symbol < 16) symbol = 16;
  const std::size_t stripe_bytes = symbol * cfg.n * cfg.r;
  StripeBuffer stripe(code, symbol);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(7);
  rng.fill(data);
  stripe.set_data(data);
  Workspace ws;

  std::printf("stripe: %zu x %zu symbols of %zu bytes (%.1f MB)\n\n", cfg.r, cfg.n, symbol,
              stripe_bytes / 1048576.0);

  for (const auto& [label, method] :
       std::vector<std::pair<const char*, EncodingMethod>>{
           {"encode (auto)      ", EncodingMethod::kAuto},
           {"encode (standard)  ", EncodingMethod::kStandard},
           {"encode (upstairs)  ", EncodingMethod::kUpstairs},
           {"encode (downstairs)", EncodingMethod::kDownstairs}}) {
    const double mbps =
        measure([&] { code.encode(stripe.view(), method, &ws); }, stripe_bytes);
    std::printf("%s %8.0f MB/s\n", label, mbps);
  }

  // Worst-case decode: m leftmost chunks + the full stair at the bottom.
  // Replayed through the session's plan cache — compiled once on the first
  // call, pure region work on every call after (the failure-epoch path).
  std::vector<bool> mask(cfg.n * cfg.r, false);
  for (std::size_t d = 0; d < cfg.m; ++d)
    for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + d] = true;
  for (std::size_t l = 0; l < cfg.m_prime(); ++l)
    for (std::size_t q = 0; q < cfg.e[l]; ++q)
      mask[(cfg.r - 1 - q) * cfg.n + cfg.m + l] = true;
  auto schedule = code.build_decode_schedule(mask);
  if (schedule) {
    const double mbps = measure(
        [&] { code.decode(stripe.view(), mask, &ws, &codec.plan_cache()); }, stripe_bytes);
    std::printf("decode (worst case)  %8.0f MB/s  (%zu lost symbols, %zu Mult_XORs)\n",
                mbps, std::count(mask.begin(), mask.end(), true),
                schedule->mult_xor_count());
  }

  // Stripe-batch pipeline: N stripes in flight through the session — the
  // serving regime. Compare against the one-stripe pool-sliced call.
  const std::size_t batch =
      std::min<std::size_t>(4, std::max<std::size_t>(1, ThreadPool::default_pool().concurrency()));
  std::printf("\nbatch pipeline, %zu stripes in flight (pool width %zu):\n", batch,
              ThreadPool::default_pool().concurrency());
  const double pooled = measure(
      [&] { code.encode_parallel(stripe.view(), 0, EncodingMethod::kAuto, &ws); }, stripe_bytes);
  std::printf("encode 1-stripe pooled %8.0f MB/s\n", pooled);

  std::vector<StripeBuffer> stripes;
  for (std::size_t i = 0; i < batch; ++i) {
    stripes.emplace_back(code, symbol);
    rng.fill(data);
    stripes[i].set_data(data);
  }
  const double batched = measure(
      [&] {
        std::vector<Codec::Handle> handles;
        for (auto& s : stripes) handles.push_back(codec.submit_encode(s.view()));
        codec.wait_all();
      },
      stripe_bytes * batch);
  std::printf("encode %zu-stripe batch %8.0f MB/s aggregate (%.2fx the pooled call)\n", batch,
              batched, batched / pooled);
  return 0;
}
