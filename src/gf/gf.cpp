#include "gf/gf.h"

#include <cassert>
#include <mutex>
#include <stdexcept>

namespace stair::gf {

namespace {

// Conventional primitive polynomials (low bits; implicit leading x^w term),
// matching jerasure/GF-Complete defaults.
std::uint64_t primitive_poly_for(int w) {
  switch (w) {
    case 4:  return 0x13;        // x^4 + x + 1
    case 8:  return 0x11d;       // x^8 + x^4 + x^3 + x^2 + 1
    case 16: return 0x1100b;     // x^16 + x^12 + x^3 + x + 1
    case 32: return 0x100400007; // x^32 + x^22 + x^2 + x + 1
    default:
      throw std::invalid_argument("GF(2^w): w must be one of {4, 8, 16, 32}");
  }
}

}  // namespace

Field::Field(int w) : w_(w), poly_(primitive_poly_for(w)) {
  if (w <= 16) {
    const std::uint32_t group = max_element();  // 2^w - 1
    log_.assign(order(), 0);
    exp_.assign(2 * group, 0);
    std::uint32_t x = 1;
    for (std::uint32_t i = 0; i < group; ++i) {
      exp_[i] = x;
      exp_[i + group] = x;  // doubled table: exp(log a + log b) without a mod
      log_[x] = i;
      x <<= 1;
      if (x >> w_) x ^= static_cast<std::uint32_t>(poly_);
    }
  }
  if (w == 8) {
    prod8_.assign(256 * 256, 0);
    for (std::uint32_t a = 0; a < 256; ++a)
      for (std::uint32_t b = 0; b < 256; ++b)
        prod8_[a * 256 + b] = static_cast<std::uint8_t>(
            (a && b) ? exp_[log_[a] + log_[b]] : 0);
  }
}

std::uint32_t Field::mul_slow(std::uint32_t a, std::uint32_t b) const {
  // Carry-less shift-and-add with modular reduction; used for w = 32 where
  // log/exp tables are impractical.
  std::uint64_t acc = 0;
  std::uint64_t aa = a;
  while (b) {
    if (b & 1) acc ^= aa;
    b >>= 1;
    aa <<= 1;
    if (aa >> w_) aa ^= poly_;
  }
  return static_cast<std::uint32_t>(acc);
}

std::uint32_t Field::mul(std::uint32_t a, std::uint32_t b) const {
  if (a == 0 || b == 0) return 0;
  if (w_ <= 16) return exp_[log_[a] + log_[b]];
  return mul_slow(a, b);
}

std::uint32_t Field::inv(std::uint32_t a) const {
  assert(a != 0 && "GF inverse of zero");
  if (w_ <= 16) return exp_[max_element() - log_[a]];
  // a^(2^w - 2) by square-and-multiply.
  return pow(a, order() - 2);
}

std::uint32_t Field::div(std::uint32_t a, std::uint32_t b) const {
  assert(b != 0 && "GF division by zero");
  if (a == 0) return 0;
  if (w_ <= 16) {
    const std::uint32_t group = max_element();
    const std::uint32_t diff = log_[a] + group - log_[b];
    return exp_[diff >= group ? diff - group : diff];
  }
  return mul(a, inv(b));
}

std::uint32_t Field::pow(std::uint32_t a, std::uint64_t e) const {
  if (a == 0) return e == 0 ? 1 : 0;
  std::uint32_t result = 1;
  std::uint32_t base = a;
  while (e) {
    if (e & 1) result = mul(result, base);
    base = mul(base, base);
    e >>= 1;
  }
  return result;
}

std::uint32_t Field::exp(std::uint64_t i) const {
  const std::uint64_t group = max_element();
  i %= group;
  if (w_ <= 16) return exp_[i];
  return pow(2, i);
}

std::uint32_t Field::log(std::uint32_t a) const {
  assert(a != 0 && "GF log of zero");
  if (w_ <= 16) return log_[a];
  // w = 32: linear search is unusable; walk the group with baby steps only for
  // the rare callers (tests). Production paths never call log for w = 32.
  std::uint32_t x = 1;
  for (std::uint64_t i = 0; i < order() - 1; ++i) {
    if (x == a) return static_cast<std::uint32_t>(i);
    x = mul(x, 2);
  }
  throw std::logic_error("GF(2^32) log: element not in group");
}

const std::uint8_t* Field::product_row8(std::uint32_t a) const {
  assert(w_ == 8);
  return prod8_.data() + a * 256;
}

const Field& field(int w) {
  static std::once_flag flags[4];
  static std::unique_ptr<Field> fields[4];
  int idx;
  switch (w) {
    case 4: idx = 0; break;
    case 8: idx = 1; break;
    case 16: idx = 2; break;
    case 32: idx = 3; break;
    default:
      throw std::invalid_argument("gf::field: w must be one of {4, 8, 16, 32}");
  }
  std::call_once(flags[idx], [idx, w] { fields[idx] = std::make_unique<Field>(w); });
  return *fields[idx];
}

}  // namespace stair::gf
