// DecodePlanCache battery: hit/miss/eviction accounting, negative-result
// caching, plan validity across capacity evictions, compiled-vs-uncompiled
// byte equality, the zero-inversion/zero-table-build guarantee of cached
// decodes, and a multi-threaded hammer (runs under the ThreadSanitizer job).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gf/kernel.h"
#include "matrix/matrix.h"
#include "stair/plan_cache.h"
#include "stair/stair_code.h"
#include "util/rng.h"

namespace stair {
namespace {

// Shared fixture config: coverage for 2 whole chunks + sectors per e = (1, 2).
const StairConfig kCfg{.n = 8, .r = 4, .m = 2, .e = {1, 2}};

std::vector<bool> column_mask(std::size_t cols_lost, std::size_t first_col = 0) {
  std::vector<bool> mask(kCfg.n * kCfg.r, false);
  for (std::size_t c = 0; c < cols_lost; ++c)
    for (std::size_t i = 0; i < kCfg.r; ++i) mask[i * kCfg.n + first_col + c] = true;
  return mask;
}

StripeBuffer encoded_stripe(const StairCode& code, std::size_t symbol, std::uint64_t seed,
                            std::vector<std::uint8_t>* data_out) {
  StripeBuffer stripe(code, symbol);
  std::vector<std::uint8_t> data(stripe.data_size());
  Rng rng(seed);
  rng.fill(data);
  stripe.set_data(data);
  code.encode(stripe.view());
  if (data_out) *data_out = data;
  return stripe;
}

void corrupt(StripeBuffer& stripe, const std::vector<bool>& mask, std::uint64_t seed) {
  Rng garbage(seed);
  for (std::size_t idx = 0; idx < mask.size(); ++idx)
    if (mask[idx]) garbage.fill(stripe.view().stored[idx]);
}

TEST(PlanCacheCompiled, HitMissEvictionAccounting) {
  const StairCode code(kCfg);
  DecodePlanCache cache(code, 2);
  EXPECT_EQ(cache.capacity(), 2u);

  auto mask_for = [&](std::size_t col) { return column_mask(1, col); };
  EXPECT_NE(cache.plan(mask_for(0)), nullptr);  // miss
  EXPECT_NE(cache.plan(mask_for(1)), nullptr);  // miss
  EXPECT_NE(cache.plan(mask_for(0)), nullptr);  // hit, refreshes 0
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.plan(mask_for(2)), nullptr);  // miss, evicts 1 (LRU)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.plan(mask_for(0)), nullptr);  // still cached: hit
  EXPECT_NE(cache.plan(mask_for(1)), nullptr);  // was evicted: miss again
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(PlanCacheCompiled, NegativeResultsAreCached) {
  const StairCode code(kCfg);
  DecodePlanCache cache(code, 4);
  const auto bad = column_mask(3);  // three dead chunks: outside coverage
  EXPECT_EQ(cache.plan(bad), nullptr);
  EXPECT_EQ(cache.plan(bad), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);  // the negative entry occupies a slot
}

TEST(PlanCacheCompiled, PlanStaysValidAcrossCapacityEvictions) {
  const StairCode code(kCfg);
  DecodePlanCache cache(code, 2);
  const std::size_t symbol = 256;

  const auto mask = column_mask(1, 0);
  const auto held = cache.plan(mask);
  ASSERT_NE(held, nullptr);

  // Churn far past capacity so the held plan's entry is certainly evicted.
  for (std::size_t col = 1; col < 6; ++col) ASSERT_NE(cache.plan(column_mask(1, col)), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 0u);

  // The held plan must still replay correctly (shared ownership, not a
  // dangling raw pointer into an evicted entry).
  std::vector<std::uint8_t> data;
  StripeBuffer stripe = encoded_stripe(code, symbol, 5, &data);
  corrupt(stripe, mask, 6);
  code.execute(*held, stripe.view());
  std::vector<std::uint8_t> out(stripe.data_size());
  stripe.get_data(out);
  EXPECT_EQ(out, data);

  // And re-requesting the evicted mask is a fresh miss, not a stale pointer.
  const std::size_t misses_before = cache.misses();
  EXPECT_NE(cache.plan(mask), nullptr);
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST(PlanCacheCompiled, CompiledPlanMatchesUncompiledScheduleByteForByte) {
  const StairCode code(kCfg);
  DecodePlanCache cache(code, 4);
  const std::size_t symbol = 1000;  // odd size: ragged strip tail

  auto mask = column_mask(2);
  mask[3 * kCfg.n + 5] = true;  // plus a sector failure

  std::vector<std::uint8_t> data;
  StripeBuffer via_cache = encoded_stripe(code, symbol, 11, &data);
  StripeBuffer via_schedule = encoded_stripe(code, symbol, 11, nullptr);
  corrupt(via_cache, mask, 12);
  corrupt(via_schedule, mask, 12);

  const auto compiled = cache.plan(mask);
  ASSERT_NE(compiled, nullptr);
  auto schedule = code.build_decode_schedule(mask);
  ASSERT_TRUE(schedule.has_value());

  code.execute(*compiled, via_cache.view());
  code.execute(*schedule, via_schedule.view());

  for (std::size_t idx = 0; idx < via_cache.view().stored.size(); ++idx) {
    const auto& a = via_cache.view().stored[idx];
    const auto& b = via_schedule.view().stored[idx];
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "symbol " << idx;
  }
}

TEST(PlanCacheCompiled, CachedDecodeSkipsInversionAndTableBuilds) {
  const StairCode code(kCfg);
  DecodePlanCache cache(code, 4);
  const std::size_t symbol = 512;

  auto mask = column_mask(1, 2);
  mask[2 * kCfg.n + 6] = true;

  // Warm the cache (this decode may invert matrices and build kernels).
  std::vector<std::uint8_t> data;
  StripeBuffer stripe = encoded_stripe(code, symbol, 21, &data);
  corrupt(stripe, mask, 22);
  Workspace ws;
  ASSERT_TRUE(code.decode(stripe.view(), mask, &ws, &cache));
  ASSERT_EQ(cache.misses(), 1u);

  // Replays of the cached mask must be pure region arithmetic: zero matrix
  // inversions and zero kernel-table constructions, per failure epoch's
  // millionth-stripe behavior.
  const std::uint64_t inversions = matrix_inversion_count();
  const std::uint64_t builds = gf::kernel_build_count();
  for (int epoch_stripe = 0; epoch_stripe < 5; ++epoch_stripe) {
    corrupt(stripe, mask, 23 + epoch_stripe);
    ASSERT_TRUE(code.decode(stripe.view(), mask, &ws, &cache));
    std::vector<std::uint8_t> out(stripe.data_size());
    stripe.get_data(out);
    ASSERT_EQ(out, data);
  }
  EXPECT_EQ(matrix_inversion_count(), inversions);
  EXPECT_EQ(gf::kernel_build_count(), builds);
  EXPECT_EQ(cache.hits(), 5u);
}

TEST(PlanCacheCompiled, MultiThreadedHammer) {
  const StairCode code(kCfg);
  DecodePlanCache cache(code, 3);  // below the mask-universe size: eviction under fire
  const std::size_t symbol = 256;
  const std::size_t kThreads = 8, kIters = 60;

  // Mask universe: five single-chunk masks, one chunk+sector mask, one
  // unrecoverable (3 dead chunks).
  std::vector<std::vector<bool>> masks;
  for (std::size_t col = 0; col < 5; ++col) masks.push_back(column_mask(1, col));
  auto with_sector = column_mask(2);
  with_sector[3 * kCfg.n + 6] = true;
  masks.push_back(with_sector);
  masks.push_back(column_mask(3));  // unrecoverable
  const std::size_t kUnrecoverable = masks.size() - 1;

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::uint8_t> data;
      StripeBuffer stripe = encoded_stripe(code, symbol, 100 + t, &data);
      Workspace ws;
      Rng pick(200 + t);
      for (std::size_t iter = 0; iter < kIters; ++iter) {
        const std::size_t m = static_cast<std::size_t>(pick.next_below(masks.size()));
        if (m == kUnrecoverable) {
          if (cache.plan(masks[m]) != nullptr) failures.fetch_add(1);
          continue;
        }
        corrupt(stripe, masks[m], 300 + t * kIters + iter);
        if (!code.decode(stripe.view(), masks[m], &ws, &cache)) {
          failures.fetch_add(1);
          continue;
        }
        std::vector<std::uint8_t> out(stripe.data_size());
        stripe.get_data(out);
        if (out != data) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_GE(cache.hits() + cache.misses(), kThreads * kIters);
}

TEST(PlanCacheCompiled, ZeroCapacityRejected) {
  const StairCode code(kCfg);
  EXPECT_THROW(DecodePlanCache(code, 0), std::invalid_argument);
}

}  // namespace
}  // namespace stair
