// Prediction — the analytic reliability pipeline (§7) packaged as one call,
// so a consumer that *measures* durability (sim/cluster_sim, bench_cluster_sim,
// the config advisor) can ask "what does the model say this cluster should
// do?" without re-plumbing pchk -> P_str -> P_arr -> MTTDL by hand.
//
// Two MTTDL forms come back:
//  * mttdl_hours — Eq. 10's Markov chain, which assumes exponentially
//    distributed rebuild times (the paper's published number).
//  * mttdl_renewal_hours — the same failure processes with a *deterministic*
//    rebuild of fixed duration (device_bytes / repair bandwidth), solved as a
//    renewal process. This is what a trace-driven simulator with
//    bandwidth-capped rebuilds actually implements, so it is the fair
//    yardstick for simulated-vs-analytic agreement; the gap between the two
//    forms is itself a finding (the Markov model's exponential-repair
//    assumption, measurable at inflated failure rates).
//
// poisson_band turns an expected event count into an explicit agreement band
// on the observed count — the acceptance criterion the simulator tests and
// the CI divergence gate both quote.
#pragma once

#include <cstddef>
#include <vector>

#include "reliability/mttdl.h"
#include "reliability/sector_models.h"

namespace stair::reliability {

/// What the analytic pipeline needs to predict one array population.
struct PredictionQuery {
  /// Array shape and rates. rebuild_hours must be the *actual* expected
  /// rebuild duration (device_bytes / repair bandwidth share), not Table 4's
  /// default. The m = 1 restriction of the §7 Markov model applies.
  SystemParams system;
  /// Coverage vector e (ascending). Empty = Reed-Solomon (no critical-mode
  /// sector tolerance).
  std::vector<std::size_t> e;
  /// Effective per-sector failure probability in critical mode — p_sec fed
  /// straight to the §7.1.2 chunk pmf. For a rate-based latent-error process
  /// under scrubbing, pass sim::scrubbed_p_sec(rate, period).
  double p_sec = 0.0;
  /// Sector-failure model: independent (Eq. 13) or correlated bursts
  /// (Eqs. 15-17) with the (b1, alpha) Pareto shape.
  bool correlated = false;
  double b1 = 0.98;
  double alpha = 1.79;
};

/// Every intermediate of the §7 pipeline plus the roll-ups a measuring
/// consumer compares against.
struct ReliabilityPrediction {
  std::vector<double> pchk;       ///< chunk failure-count pmf, size r + 1
  double pstr = 0.0;              ///< critical-mode stripe failure probability
  double p_arr = 0.0;             ///< any-stripe-in-array loss prob (Eq. 11)
  double mttdl_hours = 0.0;       ///< per-array MTTDL, Eq. 10 (exponential repair)
  double mttdl_renewal_hours = 0.0;  ///< per-array MTTDL, deterministic repair
  /// Device-failure episode rate per array: n / mttf.
  double episode_rate_per_hour = 0.0;
  /// Probability one critical episode ends in loss (deterministic repair):
  /// second-failure race + sector check at rebuild completion.
  double loss_per_episode = 0.0;
  /// User bytes one array carries: E * n * C (storage efficiency applied).
  double user_bytes_per_array = 0.0;
  /// Loss events per user petabyte-year (1 PB = 2^50 bytes, 1 y = 8766 h)
  /// under the renewal MTTDL — the headline durability unit.
  double loss_per_pb_year = 0.0;
};

/// Runs the full analytic pipeline. Throws std::invalid_argument on a
/// malformed query (m != 1, e not ascending, p_sec outside [0, 1]).
ReliabilityPrediction predict_reliability(const PredictionQuery& query);

/// Agreement band on an observed Poisson event count: [lo, hi] covers
/// `z` standard deviations around the expected count (normal approximation
/// with sqrt(expected) sigma, floored at 0 and widened by +z so tiny
/// expectations keep a non-degenerate band).
struct AgreementBand {
  double expected = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  double z = 0.0;
};

AgreementBand poisson_band(double expected_events, double z = 4.0);
bool within_band(const AgreementBand& band, double observed_events);

}  // namespace stair::reliability
