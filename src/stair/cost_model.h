// Closed-form encoding-complexity models (§5.3, Eqs. 5-6) and the cost
// comparison that drives automatic method selection. The schedule builders
// are constructed so their Mult_XOR counts equal these formulas exactly;
// tests assert the equality.
#pragma once

#include <cstddef>

#include "stair/stair_code.h"

namespace stair {

/// Eq. 5: upstairs encoding Mult_XORs per stripe,
/// (n-m)(m*r + s) + r*(n-m)*e_max.
std::size_t upstairs_mult_xors(const StairConfig& cfg);

/// Eq. 6: downstairs encoding Mult_XORs per stripe,
/// (n-m)(m + m')*r + r*s.
std::size_t downstairs_mult_xors(const StairConfig& cfg);

/// Standard encoding Mult_XORs: total number of data symbols contributing to
/// each parity symbol (§5.3), i.e. the nonzero count of the coefficient
/// matrix. Triggers coefficient computation on first use.
std::size_t standard_mult_xors(const StairCode& code);

/// All three costs plus the winner, as the paper's implementation
/// pre-computes for every configuration.
struct EncodingCosts {
  std::size_t standard = 0;
  std::size_t upstairs = 0;
  std::size_t downstairs = 0;
  EncodingMethod best = EncodingMethod::kUpstairs;
};
EncodingCosts analyze_costs(const StairCode& code);

}  // namespace stair
