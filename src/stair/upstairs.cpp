// Upstairs encoding (§5.1.1): set the outside global parity symbols to zero,
// treat the m row-parity chunks and the s inside global parity symbols as
// lost, and "recover" them bottom-up with the upstairs decoding machinery.
// In outside-global mode this degenerates to the canonical-stripe encoding of
// §4.1: column-encode virtual symbols, row-decode the real globals, then
// row-encode the row parities. Both variants cost exactly Eq. 5 Mult_XORs.

#include <numeric>

#include "stair/builders.h"
#include "stair/stair_code.h"

namespace stair::internal {

void emit_recovery_ops(Schedule& schedule, const SystematicMdsCode& code,
                       std::span<const std::size_t> available,
                       std::span<const std::size_t> targets,
                       const std::function<std::uint32_t(std::size_t)>& pos_to_id) {
  if (targets.empty()) return;
  const Matrix r = code.recovery_matrix(available, targets);
  for (std::size_t t = 0; t < targets.size(); ++t) {
    ScheduleOp op;
    op.output = pos_to_id(targets[t]);
    op.terms.reserve(available.size());
    for (std::size_t j = 0; j < available.size(); ++j)
      op.terms.push_back({r.at(t, j), pos_to_id(available[j])});
    schedule.add_op(std::move(op));
  }
}

namespace {

// Ccol op over stored column `col`: positions are canonical rows.
void emit_column_ops(Schedule& sch, const StairCode& code, std::size_t col,
                     std::span<const std::size_t> available,
                     std::span<const std::size_t> targets) {
  const StairLayout& layout = code.layout();
  emit_recovery_ops(sch, code.ccol(), available, targets,
                    [&](std::size_t row) { return layout.id(row, col); });
}

// Crow op over canonical row `row`: positions are canonical columns.
void emit_row_ops(Schedule& sch, const StairCode& code, std::size_t row,
                  std::span<const std::size_t> available,
                  std::span<const std::size_t> targets) {
  const StairLayout& layout = code.layout();
  emit_recovery_ops(sch, code.crow(), available, targets,
                    [&](std::size_t col) { return layout.id(row, col); });
}

std::vector<std::size_t> iota_vec(std::size_t count, std::size_t start = 0) {
  std::vector<std::size_t> v(count);
  std::iota(v.begin(), v.end(), start);
  return v;
}

}  // namespace

Schedule build_upstairs_schedule(const StairCode& code) {
  const StairConfig& cfg = code.config();
  const StairLayout& layout = code.layout();
  const std::size_t n = cfg.n, r = cfg.r, m = cfg.m;
  const std::size_t mp = cfg.m_prime(), emax = cfg.e_max();
  const bool inside = code.mode() == GlobalParityMode::kInside;

  Schedule sch(code.field());

  // Data columns that contain no inside globals ("good" columns). In outside
  // mode that is every data column.
  const std::size_t first_stair_col = n - m - (inside ? mp : 0);

  // Step 1 — Ccol-encode each good data column's e_max virtual symbols
  // (Figure 4 steps 1-3; cost r Mult_XORs per virtual symbol).
  const std::vector<std::size_t> col_data_rows = iota_vec(r);
  const std::vector<std::size_t> col_virtual_rows = iota_vec(emax, r);
  for (std::size_t j = 0; j < first_stair_col; ++j)
    emit_column_ops(sch, code, j, col_data_rows, col_virtual_rows);

  // Step 2 — alternate augmented-row Crow decodes with stair-column Ccol
  // repairs (Figure 4 steps 4-8). In inside mode the stair columns hold the
  // inside globals; the Crow decodes read the zero-valued outside globals.
  // In outside mode there are no stair columns and the Crow decodes *produce*
  // the outside globals instead.
  std::vector<bool> repaired(mp, false);
  auto repair_stair_column = [&](std::size_t l) {
    const std::size_t col = layout.global_column(l);
    const std::size_t el = cfg.e[l];
    // Knowns: the r - e_l data rows above the globals plus the e_l virtual
    // rows decoded so far. Targets: the e_l inside globals plus the column's
    // remaining virtual symbols (needed by later augmented-row decodes).
    std::vector<std::size_t> available = iota_vec(r - el);
    for (std::size_t h = 0; h < el; ++h) available.push_back(r + h);
    std::vector<std::size_t> targets = iota_vec(el, r - el);
    for (std::size_t h = el; h < emax; ++h) targets.push_back(r + h);
    emit_column_ops(sch, code, col, available, targets);
    repaired[l] = true;
  };

  for (std::size_t h = 0; h < emax; ++h) {
    if (inside)
      for (std::size_t l = 0; l < mp; ++l)
        if (!repaired[l] && cfg.e[l] <= h) repair_stair_column(l);

    // Augmented row h: knowns are the virtual symbols of good + repaired
    // columns and the (zero in inside mode) globals with e_l > h; targets are
    // the virtual symbols of unrepaired stair columns (inside) or the real
    // outside globals of this row (outside).
    std::vector<std::size_t> available;
    for (std::size_t j = 0; j < first_stair_col; ++j) available.push_back(j);
    std::vector<std::size_t> targets;
    if (inside) {
      for (std::size_t l = 0; l < mp; ++l) {
        const std::size_t col = layout.global_column(l);
        if (repaired[l])
          available.push_back(col);
        else
          targets.push_back(col);
      }
      for (std::size_t l = 0; l < mp; ++l)
        if (cfg.e[l] > h) available.push_back(n + l);
    } else {
      for (std::size_t l = 0; l < mp; ++l)
        if (cfg.e[l] > h) targets.push_back(n + l);
    }
    emit_row_ops(sch, code, r + h, available, targets);
  }
  if (inside)
    for (std::size_t l = 0; l < mp; ++l)
      if (!repaired[l]) repair_stair_column(l);

  // Step 3 — row parities, row by row (Figure 4 steps 9-12). Every data
  // position (including recovered inside globals) is known now.
  const std::vector<std::size_t> row_data_cols = iota_vec(n - m);
  const std::vector<std::size_t> row_parity_cols = iota_vec(m, n - m);
  for (std::size_t i = 0; i < r; ++i)
    emit_row_ops(sch, code, i, row_data_cols, row_parity_cols);

  return sch;
}

}  // namespace stair::internal
