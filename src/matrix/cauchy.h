// Cauchy matrices over GF(2^w).
//
// A Cauchy matrix C with c_ij = 1 / (x_i + y_j), all x_i and y_j distinct,
// has every square submatrix nonsingular. A systematic generator [I | C]
// built from one is therefore MDS, which is what makes Cauchy Reed-Solomon
// codes work for arbitrary (length, dimension) up to the field size.
#pragma once

#include <cstddef>

#include "matrix/matrix.h"

namespace stair {

/// rows x cols Cauchy matrix using x_i = i and y_j = rows + j.
/// Requires rows + cols <= 2^w so all points are distinct field elements.
Matrix cauchy_matrix(const gf::Field& f, std::size_t rows, std::size_t cols);

/// Cauchy matrix from explicit point sets (sizes define the shape).
/// All x and y values must be pairwise distinct across both sets.
Matrix cauchy_matrix_from_points(const gf::Field& f,
                                 std::span<const std::uint32_t> x,
                                 std::span<const std::uint32_t> y);

}  // namespace stair
