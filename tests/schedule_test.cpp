// Schedule tests: execution semantics, Mult_XOR accounting, zero-term
// trimming, and the backward slice used by degraded reads — on hand-built
// synthetic schedules where every expectation is computable by hand.

#include <gtest/gtest.h>

#include <cstring>

#include "stair/schedule.h"
#include "util/buffer.h"

namespace stair {
namespace {

class ScheduleTest : public ::testing::Test {
 protected:
  ScheduleTest() : f_(gf::field(8)) {
    for (int i = 0; i < 6; ++i) bufs_.emplace_back(8);
    for (auto& b : bufs_) symbols_.push_back(b.span());
  }

  void set_symbol(std::size_t id, std::uint8_t value) {
    std::memset(bufs_[id].data(), value, 8);
  }
  std::uint8_t get_symbol(std::size_t id) const { return bufs_[id][0]; }

  const gf::Field& f_;
  std::vector<AlignedBuffer> bufs_;
  std::vector<std::span<std::uint8_t>> symbols_;
};

TEST_F(ScheduleTest, ExecutesLinearCombinations) {
  // s2 = 3*s0 + 1*s1 ; s3 = 1*s2 (chained — must see the fresh s2).
  Schedule sch(f_);
  sch.add_op({2, {{3, 0}, {1, 1}}});
  sch.add_op({3, {{1, 2}}});
  set_symbol(0, 0x05);
  set_symbol(1, 0x07);
  set_symbol(2, 0xff);  // stale garbage: execute must overwrite
  sch.execute(symbols_);
  const std::uint8_t expect = static_cast<std::uint8_t>(f_.mul(3, 0x05) ^ 0x07);
  EXPECT_EQ(get_symbol(2), expect);
  EXPECT_EQ(get_symbol(3), expect);
}

TEST_F(ScheduleTest, MultXorCountSumsTerms) {
  Schedule sch(f_);
  sch.add_op({2, {{3, 0}, {1, 1}}});
  sch.add_op({3, {{1, 2}}});
  sch.add_op({4, {}});
  EXPECT_EQ(sch.mult_xor_count(), 3u);
  EXPECT_EQ(sch.ops().size(), 3u);
}

TEST_F(ScheduleTest, OptimizedDropsZeroCoeffAndZeroSymbols) {
  Schedule sch(f_);
  sch.add_op({2, {{3, 0}, {0, 1}, {5, 4}}});  // coeff-0 term + zero-symbol term
  std::vector<bool> zeros(6, false);
  zeros[4] = true;
  const Schedule trimmed = sch.optimized(zeros);
  ASSERT_EQ(trimmed.ops().size(), 1u);
  EXPECT_EQ(trimmed.ops()[0].terms.size(), 1u);
  EXPECT_EQ(trimmed.ops()[0].terms[0].input, 0u);

  // Semantics preserved when the dropped symbol really is zero.
  set_symbol(0, 0x11);
  set_symbol(1, 0x22);
  set_symbol(4, 0x00);
  sch.execute(symbols_);
  const std::uint8_t full = get_symbol(2);
  set_symbol(2, 0xee);
  trimmed.execute(symbols_);
  EXPECT_EQ(get_symbol(2), full);
}

TEST_F(ScheduleTest, PrunedForKeepsExactlyTheSlice) {
  // Chain: s2 <- s0; s3 <- s1; s4 <- s2 + s3; s5 <- s0.
  Schedule sch(f_);
  sch.add_op({2, {{2, 0}}});
  sch.add_op({3, {{4, 1}}});
  sch.add_op({4, {{1, 2}, {1, 3}}});
  sch.add_op({5, {{7, 0}}});

  // Wanting s4 requires ops for s2, s3, s4 but not s5.
  const Schedule sliced = sch.pruned_for({4});
  ASSERT_EQ(sliced.ops().size(), 3u);
  for (const auto& op : sliced.ops()) EXPECT_NE(op.output, 5u);

  // Wanting s5 requires only the one op.
  const Schedule tiny = sch.pruned_for({5});
  ASSERT_EQ(tiny.ops().size(), 1u);
  EXPECT_EQ(tiny.ops()[0].output, 5u);

  // Wanting an input symbol that no op produces yields an empty schedule.
  EXPECT_TRUE(sch.pruned_for({0}).empty());

  // Execution of the slice matches the full run for the wanted symbol.
  set_symbol(0, 0x0a);
  set_symbol(1, 0x0b);
  sch.execute(symbols_);
  const std::uint8_t expect4 = get_symbol(4);
  set_symbol(4, 0x00);
  set_symbol(5, 0x00);
  sliced.execute(symbols_);
  EXPECT_EQ(get_symbol(4), expect4);
  EXPECT_EQ(get_symbol(5), 0x00) << "unwanted op must not run";
}

TEST_F(ScheduleTest, EmptyScheduleIsANoop) {
  Schedule sch(f_);
  EXPECT_TRUE(sch.empty());
  set_symbol(0, 0x33);
  sch.execute(symbols_);
  EXPECT_EQ(get_symbol(0), 0x33);
}

}  // namespace
}  // namespace stair
