// Figure 19: configuring the sector-failure coverage for bursts.
//   (a) burst-length CDFs for five (b1, alpha) pairs;
//   (b) MTTDL_sys vs s for e = (s) and e = (1, s-1) under four (b1, alpha)
//       pairs at P_bit in {1e-14, 1e-12, 1e-10}.
//
// Expected shape: for bursty distributions (small b1, small alpha) e = (s)
// wins by growing amounts as s increases (exponential improvement); for
// nearly burst-free distributions the two coverages converge and e = (1,s-1)
// can even win at high P_bit — matching the independent-model ranking.

#include <cmath>
#include <iostream>
#include <vector>

#include "reliability/mttdl.h"
#include "reliability/pstr.h"
#include "reliability/sector_models.h"
#include "util/table.h"

using namespace stair;
using namespace stair::reliability;

int main() {
  const SystemParams p;
  std::cout << "=== Figure 19: coverage configuration under sector failure bursts ===\n\n";

  // Panel (a): burst-length CDFs.
  const std::vector<std::pair<double, double>> all_pairs{
      {0.9, 1.0}, {0.98, 1.79}, {0.99, 2.0}, {0.999, 3.0}, {0.9999, 4.0}};
  {
    TablePrinter table("(a) CDF of burst length, P(L <= len)");
    std::vector<std::string> header{"len"};
    for (const auto& [b1, a] : all_pairs)
      header.push_back("b1=" + format_sig(b1, 4) + ",a=" + format_sig(a, 3));
    table.set_header(header);
    std::vector<std::vector<double>> cdfs;
    for (const auto& [b1, a] : all_pairs) cdfs.push_back(BurstDistribution(b1, a).cdf(16));
    for (std::size_t len = 1; len <= 16; ++len) {
      std::vector<std::string> row{std::to_string(len)};
      for (const auto& cdf : cdfs) row.push_back(format_sig(cdf[len], 6));
      table.add_row(row);
    }
    table.print(std::cout);
    TablePrinter means("average burst length B (Eq. 14)");
    means.set_header({"(b1, alpha)", "B"});
    for (const auto& [b1, a] : all_pairs)
      means.add_row({"(" + format_sig(b1, 4) + ", " + format_sig(a, 3) + ")",
                     format_sig(BurstDistribution(b1, a).mean(16), 5)});
    means.print(std::cout);
  }

  // Panel (b): MTTDL vs s for e = (s) and e = (1, s-1).
  const std::vector<std::pair<double, double>> pairs{
      {0.9, 1.0}, {0.99, 2.0}, {0.999, 3.0}, {0.9999, 4.0}};
  const std::size_t chunks = p.n - p.m;
  for (const double p_bit : {1e-14, 1e-12, 1e-10}) {
    const double p_sec = sector_failure_prob(p_bit, static_cast<std::size_t>(p.sector_bytes));
    TablePrinter table("(b) MTTDL_sys (hours) vs s at P_bit = " + format_sig(p_bit, 2));
    std::vector<std::string> header{"s"};
    for (const auto& [b1, a] : pairs) {
      header.push_back("e=(s) " + format_sig(b1, 4) + "/" + format_sig(a, 2));
      header.push_back("e=(1,s-1) " + format_sig(b1, 4) + "/" + format_sig(a, 2));
    }
    table.set_header(header);

    for (std::size_t s = 1; s <= 12; ++s) {
      std::vector<std::string> row{std::to_string(s)};
      for (const auto& [b1, a] : pairs) {
        const auto pchk = correlated_chunk_pmf(p_sec, BurstDistribution(b1, a), p.r);
        const std::vector<std::size_t> e_s{s};
        row.push_back(format_sig(mttdl_system(p, s, pstr_stair(pchk, chunks, e_s)), 4));
        if (s >= 2) {
          const std::vector<std::size_t> e_1s{1, s - 1};
          row.push_back(format_sig(mttdl_system(p, s, pstr_stair(pchk, chunks, e_1s)), 4));
        } else {
          row.push_back("-");
        }
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }

  std::cout << "Shape check: for (0.9, 1) e=(s) grows ~exponentially in s and beats\n"
               "e=(1,s-1) decisively; for (0.9999, 4) the gap collapses and at\n"
               "P_bit=1e-10 e=(1,s-1) can win — §7.2.2's case for wide-s support.\n";
  return 0;
}
