#include "reliability/sector_models.h"

#include <cmath>
#include <stdexcept>

namespace stair::reliability {

double sector_failure_prob(double p_bit, std::size_t sector_bytes) {
  const double bits = static_cast<double>(sector_bytes) * 8.0;
  // 1 - (1 - p)^bits, computed stably for tiny p.
  return -std::expm1(bits * std::log1p(-p_bit));
}

std::vector<double> independent_chunk_pmf(double p_sec, std::size_t r) {
  std::vector<double> pmf(r + 1, 0.0);
  // Binomial(r, p_sec) via running product to stay stable for small p.
  for (std::size_t i = 0; i <= r; ++i) {
    double log_term = 0.0;
    for (std::size_t k = 0; k < i; ++k)
      log_term += std::log(static_cast<double>(r - k) / static_cast<double>(i - k));
    log_term += static_cast<double>(i) * std::log(p_sec);
    log_term += static_cast<double>(r - i) * std::log1p(-p_sec);
    pmf[i] = std::exp(log_term);
  }
  return pmf;
}

std::vector<double> BurstDistribution::pmf(std::size_t r_max) const {
  if (r_max == 0) throw std::invalid_argument("BurstDistribution: r_max must be >= 1");
  std::vector<double> b(r_max + 1, 0.0);
  b[1] = r_max == 1 ? 1.0 : b1_;
  if (r_max == 1) return b;
  auto tail = [this](std::size_t i) {  // P(L >= i | L >= 2)
    return std::pow(static_cast<double>(i) / 2.0, -alpha_);
  };
  for (std::size_t i = 2; i < r_max; ++i)
    b[i] = (1.0 - b1_) * (tail(i) - tail(i + 1));
  b[r_max] = (1.0 - b1_) * tail(r_max);  // truncation lumps the tail
  return b;
}

std::vector<double> BurstDistribution::cdf(std::size_t r_max) const {
  std::vector<double> c = pmf(r_max);
  for (std::size_t i = 2; i <= r_max; ++i) c[i] += c[i - 1];
  return c;
}

double BurstDistribution::mean(std::size_t r_max) const {
  const std::vector<double> b = pmf(r_max);
  double mean = 0.0;
  for (std::size_t i = 1; i <= r_max; ++i) mean += static_cast<double>(i) * b[i];
  return mean;
}

std::vector<double> correlated_chunk_pmf(double p_sec, const BurstDistribution& bursts,
                                         std::size_t r) {
  const std::vector<double> b = bursts.pmf(r);
  const double burst_rate = r * p_sec / bursts.mean(r);  // Eq. 16's right side
  std::vector<double> pmf(r + 1, 0.0);
  double tail = 0.0;
  for (std::size_t i = 1; i <= r; ++i) {
    pmf[i] = b[i] * burst_rate;  // Eq. 17
    tail += pmf[i];
  }
  pmf[0] = 1.0 - tail;  // Eq. 15 up to the same first-order approximation
  return pmf;
}

}  // namespace stair::reliability
