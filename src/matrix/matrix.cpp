#include "matrix/matrix.h"

#include <atomic>
#include <cassert>
#include <stdexcept>

namespace stair {

Matrix::Matrix(const gf::Field& f, std::size_t rows, std::size_t cols)
    : field_(&f), rows_(rows), cols_(cols), data_(rows * cols, 0) {}

Matrix Matrix::identity(const gf::Field& f, std::size_t n) {
  Matrix m(f, n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, 1);
  return m;
}

Matrix Matrix::mul(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  Matrix out(*field_, rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const std::uint32_t a = at(i, k);
      if (a == 0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        const std::uint32_t b = rhs.at(k, j);
        if (b == 0) continue;
        out.set(i, j, gf::Field::add(out.at(i, j), field_->mul(a, b)));
      }
    }
  }
  return out;
}

std::vector<std::uint32_t> Matrix::mul_vec(std::span<const std::uint32_t> v) const {
  assert(v.size() == cols_);
  std::vector<std::uint32_t> out(rows_, 0);
  for (std::size_t i = 0; i < rows_; ++i) {
    std::uint32_t acc = 0;
    for (std::size_t j = 0; j < cols_; ++j) {
      const std::uint32_t a = at(i, j);
      if (a && v[j]) acc ^= field_->mul(a, v[j]);
    }
    out[i] = acc;
  }
  return out;
}

namespace {
std::atomic<std::uint64_t> g_inversions{0};
}  // namespace

std::uint64_t matrix_inversion_count() { return g_inversions.load(std::memory_order_relaxed); }

std::optional<Matrix> Matrix::inverse() const {
  if (rows_ != cols_) throw std::invalid_argument("Matrix::inverse: not square");
  g_inversions.fetch_add(1, std::memory_order_relaxed);
  const std::size_t n = rows_;
  Matrix work = *this;
  Matrix inv = identity(*field_, n);

  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot at or below the diagonal.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return std::nullopt;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(work.row(pivot)[j], work.row(col)[j]);
        std::swap(inv.row(pivot)[j], inv.row(col)[j]);
      }
    }
    // Scale the pivot row to make the pivot 1.
    const std::uint32_t p = work.at(col, col);
    if (p != 1) {
      const std::uint32_t pinv = field_->inv(p);
      for (std::size_t j = 0; j < n; ++j) {
        work.set(col, j, field_->mul(work.at(col, j), pinv));
        inv.set(col, j, field_->mul(inv.at(col, j), pinv));
      }
    }
    // Eliminate the column everywhere else.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint32_t factor = work.at(r, col);
      if (factor == 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        work.set(r, j, gf::Field::add(work.at(r, j), field_->mul(factor, work.at(col, j))));
        inv.set(r, j, gf::Field::add(inv.at(r, j), field_->mul(factor, inv.at(col, j))));
      }
    }
  }
  return inv;
}

std::size_t Matrix::rank() const {
  Matrix work = *this;
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols_ && rank < rows_; ++col) {
    std::size_t pivot = rank;
    while (pivot < rows_ && work.at(pivot, col) == 0) ++pivot;
    if (pivot == rows_) continue;
    if (pivot != rank)
      for (std::size_t j = 0; j < cols_; ++j) std::swap(work.row(pivot)[j], work.row(rank)[j]);
    const std::uint32_t pinv = field_->inv(work.at(rank, col));
    for (std::size_t j = col; j < cols_; ++j)
      work.set(rank, j, field_->mul(work.at(rank, j), pinv));
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == rank) continue;
      const std::uint32_t factor = work.at(r, col);
      if (factor == 0) continue;
      for (std::size_t j = col; j < cols_; ++j)
        work.set(r, j, gf::Field::add(work.at(r, j), field_->mul(factor, work.at(rank, j))));
    }
    ++rank;
  }
  return rank;
}

bool Matrix::is_invertible() const {
  return rows_ == cols_ && rank() == rows_;
}

Matrix Matrix::select(std::span<const std::size_t> row_idx,
                      std::span<const std::size_t> col_idx) const {
  Matrix out(*field_, row_idx.size(), col_idx.size());
  for (std::size_t i = 0; i < row_idx.size(); ++i)
    for (std::size_t j = 0; j < col_idx.size(); ++j)
      out.set(i, j, at(row_idx[i], col_idx[j]));
  return out;
}

Matrix Matrix::concat_cols(const Matrix& rhs) const {
  assert(rows_ == rhs.rows_);
  Matrix out(*field_, rows_, cols_ + rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out.set(i, j, at(i, j));
    for (std::size_t j = 0; j < rhs.cols_; ++j) out.set(i, cols_ + j, rhs.at(i, j));
  }
  return out;
}

std::optional<std::vector<std::uint32_t>> solve(const Matrix& a,
                                                std::span<const std::uint32_t> b) {
  auto inv = a.inverse();
  if (!inv) return std::nullopt;
  return inv->mul_vec(b);
}

}  // namespace stair
