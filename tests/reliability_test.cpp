// Reliability-model tests (§7, Appendix B): the general P_str enumeration
// must reproduce all six closed forms; N_arr must reproduce the paper's
// table exactly; sector models must be proper distributions; MTTDL must
// respond monotonically to its drivers.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "reliability/mttdl.h"
#include "reliability/pstr.h"
#include "reliability/sector_models.h"

namespace stair::reliability {
namespace {

constexpr double kTol = 1e-12;

std::vector<double> test_pmf(std::size_t r) {
  // A deliberately non-tiny pmf so closed-form vs enumeration differences
  // would show up loudly. Decaying geometric-ish tail, normalized via P(0).
  std::vector<double> pchk(r + 1, 0.0);
  double tail = 0.0;
  for (std::size_t i = 1; i <= r; ++i) {
    pchk[i] = 0.05 / std::pow(2.2, static_cast<double>(i));
    tail += pchk[i];
  }
  pchk[0] = 1.0 - tail;
  return pchk;
}

TEST(PstrClosedForms, GeneralEnumerationMatchesEqs19Through23) {
  const std::size_t r = 16, chunks = 7;
  const auto pchk = test_pmf(r);

  for (std::size_t s = 1; s <= 6; ++s) {
    const std::vector<std::size_t> e_s{s};
    EXPECT_NEAR(pstr_stair(pchk, chunks, e_s), pstr_stair_e_s(pchk, chunks, s), kTol)
        << "e=(s), s=" << s;
  }
  for (std::size_t s = 2; s <= 6; ++s) {
    const std::vector<std::size_t> e{1, s - 1};
    EXPECT_NEAR(pstr_stair(pchk, chunks, e), pstr_stair_e_1_s1(pchk, chunks, s), kTol)
        << "e=(1,s-1), s=" << s;
  }
  for (std::size_t s = 4; s <= 8; ++s) {
    const std::vector<std::size_t> e{2, s - 2};
    EXPECT_NEAR(pstr_stair(pchk, chunks, e), pstr_stair_e_2_s2(pchk, chunks, s), kTol)
        << "e=(2,s-2), s=" << s;
  }
  for (std::size_t s = 3; s <= 7; ++s) {
    const std::vector<std::size_t> e{1, 1, s - 2};
    EXPECT_NEAR(pstr_stair(pchk, chunks, e), pstr_stair_e_11_s2(pchk, chunks, s), kTol)
        << "e=(1,1,s-2), s=" << s;
  }
  for (std::size_t s = 1; s <= 5; ++s) {
    const std::vector<std::size_t> ones(s, 1);
    EXPECT_NEAR(pstr_stair(pchk, chunks, ones), pstr_stair_e_ones(pchk, chunks, s), kTol)
        << "e=(1...1), s=" << s;
  }
}

TEST(PstrClosedForms, GeneralSdMatchesEqs24Through26) {
  const auto pchk = test_pmf(16);
  for (std::size_t s = 1; s <= 3; ++s)
    EXPECT_NEAR(pstr_sd(pchk, 7, s), pstr_sd_closed(pchk, 7, s), kTol) << "s=" << s;
  EXPECT_THROW(pstr_sd_closed(pchk, 7, 4), std::invalid_argument);
}

TEST(PstrProperties, OrderingAcrossCodes) {
  const auto pchk = test_pmf(16);
  const std::size_t chunks = 7;
  // RS (no sector tolerance) is worst; more coverage is monotonically better;
  // SD with s dominates any STAIR e with sum s (SD covers all placements).
  const double rs = pstr_rs(pchk, chunks);
  const std::vector<std::size_t> e12{1, 2};
  const std::vector<std::size_t> e3{3};
  const double st12 = pstr_stair(pchk, chunks, e12);
  const double st3 = pstr_stair(pchk, chunks, e3);
  const double sd3 = pstr_sd(pchk, chunks, 3);
  EXPECT_GT(rs, st12);
  EXPECT_GT(rs, st3);
  EXPECT_LE(sd3, st12 + kTol);
  EXPECT_LE(sd3, st3 + kTol);

  // Wider coverage shrinks P_str: e=(1,2) covers strictly more than e=(1,1).
  const std::vector<std::size_t> e11{1, 1};
  EXPECT_LT(st12, pstr_stair(pchk, chunks, e11));
}

TEST(PstrProperties, StairEquivalencesAtTheExtremes) {
  const auto pchk = test_pmf(8);
  // e = (1) equals SD/PMDS with s = 1 (§2).
  const std::vector<std::size_t> e1{1};
  EXPECT_NEAR(pstr_stair(pchk, 6, e1), pstr_sd(pchk, 6, 1), kTol);
  // Zero-probability sector failures: everything is perfectly reliable.
  std::vector<double> clean(9, 0.0);
  clean[0] = 1.0;
  EXPECT_NEAR(pstr_stair(clean, 6, e1), 0.0, kTol);
  EXPECT_NEAR(pstr_rs(clean, 6), 0.0, kTol);
}

TEST(SectorModels, SectorFailureProbabilityMatchesEq12) {
  const double p_bit = 1e-12;
  const double p_sec = sector_failure_prob(p_bit, 512);
  EXPECT_NEAR(p_sec, 512 * 8 * p_bit, p_sec * 1e-6);  // linear regime
  EXPECT_GT(sector_failure_prob(1e-4, 512), 0.3);     // saturating regime is sane
  EXPECT_LT(sector_failure_prob(1e-4, 512), 1.0);
}

TEST(SectorModels, IndependentPmfIsBinomial) {
  const double p = 1e-3;
  const std::size_t r = 16;
  const auto pmf = independent_chunk_pmf(p, r);
  double total = 0.0;
  for (double v : pmf) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(pmf[0], std::pow(1.0 - p, 16.0), 1e-15);
  EXPECT_NEAR(pmf[1], 16.0 * p * std::pow(1.0 - p, 15.0), 1e-15);
  EXPECT_NEAR(pmf[2], 120.0 * p * p * std::pow(1.0 - p, 14.0), 1e-15);
}

TEST(SectorModels, BurstDistributionIsProper) {
  for (const auto& [b1, alpha] : std::vector<std::pair<double, double>>{
           {0.9, 1.0}, {0.98, 1.79}, {0.99, 2.0}, {0.999, 3.0}, {0.9999, 4.0}}) {
    const BurstDistribution dist(b1, alpha);
    const auto pmf = dist.pmf(16);
    double total = 0.0;
    for (double v : pmf) total += v;
    EXPECT_NEAR(total, 1.0, 1e-12) << "b1=" << b1;
    EXPECT_NEAR(pmf[1], b1, 1e-12);
    // Heavier tails (smaller alpha) -> longer mean bursts.
    EXPECT_GE(dist.mean(16), 1.0);
  }
  EXPECT_GT(BurstDistribution(0.9, 1.0).mean(16), BurstDistribution(0.9, 4.0).mean(16));
  // B is close to 1 sector for field-typical parameters (§7.1.2 quotes 1.0291).
  EXPECT_NEAR(BurstDistribution(0.98, 1.79).mean(16), 1.03, 0.08);
}

TEST(SectorModels, CorrelatedPmfConcentratesMassInBursts) {
  const double p_sec = 1e-4;
  const BurstDistribution bursts(0.9, 1.0);  // very bursty
  const auto corr = correlated_chunk_pmf(p_sec, bursts, 16);
  const auto indep = independent_chunk_pmf(p_sec, 16);
  double total = 0.0;
  for (double v : corr) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Multi-sector losses in one chunk are vastly more likely when correlated.
  EXPECT_GT(corr[3], indep[3] * 100.0);
}

TEST(Mttdl, NarrTableReproducesThePaper) {
  // §7.2: N_arr for s = 0..12 at U = 10 PB, C = 300 GB, n = 8, r = 16, m = 1.
  const SystemParams p;
  const std::vector<std::size_t> expected{4994, 5039, 5085, 5131, 5179, 5227, 5276,
                                          5327, 5378, 5430, 5483, 5538, 5593};
  for (std::size_t s = 0; s <= 12; ++s) {
    const double eff = storage_efficiency(p.n, p.r, p.m, s);
    EXPECT_EQ(num_arrays(p, eff), expected[s]) << "s=" << s;
  }
}

TEST(Mttdl, EfficiencyMatchesEq8) {
  EXPECT_DOUBLE_EQ(storage_efficiency(8, 16, 1, 0), 112.0 / 128.0);
  EXPECT_DOUBLE_EQ(storage_efficiency(8, 16, 1, 3), 109.0 / 128.0);
  EXPECT_DOUBLE_EQ(storage_efficiency(8, 4, 2, 4), (24.0 - 4.0) / 32.0);
}

TEST(Mttdl, RespondsMonotonicallyToDrivers) {
  const SystemParams p;
  // Smaller P_str -> larger MTTDL.
  EXPECT_GT(mttdl_system(p, 1, 1e-15), mttdl_system(p, 1, 1e-12));
  // With identical P_str, more parity sectors only cost arrays (denominator).
  EXPECT_GT(mttdl_system(p, 0, 1e-13), mttdl_system(p, 12, 1e-13));
  // Zero P_str: bounded by the pure double-failure MTTDL.
  const double perfect = mttdl_system(p, 0, 0.0);
  EXPECT_GT(perfect, mttdl_system(p, 0, 1e-16));
}

TEST(Mttdl, EndToEndRsVsStairGapAtDatasheetPbit) {
  // Figure 17(a)'s headline: at P_bit = 1e-14 under the independent model,
  // STAIR/SD with s = 1 beat RS by more than two orders of magnitude.
  const SystemParams p;
  const double p_sec = sector_failure_prob(1e-14, 512);
  const auto pchk = independent_chunk_pmf(p_sec, p.r);
  const std::size_t chunks = p.n - p.m;

  const double rs = mttdl_system(p, 0, pstr_rs(pchk, chunks));
  const std::vector<std::size_t> e1{1};
  const double st1 = mttdl_system(p, 1, pstr_stair(pchk, chunks, e1));
  EXPECT_GT(st1, rs * 100.0);
}

TEST(Mttdl, MarkovModelGuardsItsAssumptions) {
  SystemParams p;
  p.m = 2;
  EXPECT_THROW(mttdl_array(p, 1e-6), std::invalid_argument);
}

}  // namespace
}  // namespace stair::reliability
