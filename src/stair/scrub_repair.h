// Scrubber — online scrub + rolling repair over a StripeStore.
//
// sim/scrubber.h models *when* latent sector errors should be hunted; this
// is the loop that hunts them. A Scrubber walks a StripeStore through the
// same verify path the IO pipeline uses for degraded reads — per-sector
// manifest checksums surface latent errors (bit rot, torn writes, vanished
// chunks) — and escalates every hit into a targeted repair:
//
//   scrub:   read(n chunks k) ─▶ [verify every sector, build erasure mask]
//              ├─ clean: retire
//              └─ hit:  submit_decode via the session DecodePlanCache
//                         ─▶ re-verify reconstruction against the manifest
//                         ─▶ write ONLY the damaged sectors back in place
//   rebuild: the same walk with one device's column pre-masked and its file
//            recreated — a bounded-concurrency stream of degraded reads +
//            re-encodes, paced exactly like scrub.
//
// Pacing, because scrub is a guest on a serving node: a token bucket on
// scanned bytes (rate_mbps / burst) bounds sustained disk traffic, an
// idle-slot gate holds the next stripe while the Codec is busy with
// foreground jobs (bounded by max_stall so scrub always makes progress),
// and stripes_in_flight bounds the ring exactly like IoPipeline's
// queue_depth. sim::pass_rate_mbps converts a ScrubPolicy period into the
// rate knob.
//
// Repair is write-minimal and checked: reconstruction happens in a leased
// stripe slot, every reconstructed sector is verified against its manifest
// checksum *before* any write is issued (a repair must never write bytes it
// cannot prove), sectors are patched in place through Engine::open_update
// (no truncation — healthy sectors are untouched), and a fully-masked
// column writes one whole chunk instead of r sector writes. After a pass
// that repaired anything the manifest is re-saved (atomic temp + rename),
// refreshing the store's recovery point.
//
// Submissions are phase-tagged (io::PhaseScope): scrub reads carry kScrub,
// rebuild reads kRebuild, repair writes kRepair — which is what lets the
// fault decorator aim a fault plan at background maintenance while
// foreground traffic on the same files stays healthy, and what a future
// admission layer can prioritize on.
//
// A Scrubber shares the Codec (and optionally the Engine) with foreground
// pipelines; start()/stop() run passes on a background thread for
// continuous scrubbing. One pass at a time per Scrubber.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "stair/codec.h"
#include "stair/io_pipeline.h"
#include "util/stripe_io.h"
#include "util/workspace_pool.h"

namespace stair {

/// Cluster-wide repair-bandwidth governor: one token bucket shared by many
/// Scrubbers (one per array / store), so N concurrently-rebuilding arrays
/// split one cap instead of each running at full tilt — the knob the cluster
/// simulator's repair-bandwidth model corresponds to on the real data path.
/// acquire() is called from the scrub/rebuild walk before each stripe's
/// reads; it blocks until the bytes are covered or `cancel` returns true.
class SharedBandwidth {
 public:
  explicit SharedBandwidth(double rate_mbps, double burst_bytes = 8.0 * 1024 * 1024);

  /// Draws `bytes` tokens, sleeping off any deficit in short slices so a
  /// stopping Scrubber stays responsive. Returns true when the caller had to
  /// wait (a throttle stall), false when tokens were immediately available
  /// or the rate is unpaced. `cancel` (optional) aborts the wait.
  bool acquire(std::size_t bytes, const std::function<bool()>& cancel = {});

  double rate_mbps() const { return rate_mbps_; }
  /// Total bytes granted — what a test divides by wall time to prove the
  /// aggregate across all sharing Scrubbers stayed under the cap.
  std::uint64_t bytes_granted() const {
    return granted_.load(std::memory_order_relaxed);
  }

 private:
  const double rate_mbps_;
  const double burst_bytes_;
  std::mutex mu_;
  double tokens_ = 0.0;
  std::chrono::steady_clock::time_point refill_{};
  std::atomic<std::uint64_t> granted_{0};
};

struct ScrubOptions {
  /// Stripes in flight at once (the bounded ring; same meaning as
  /// IoPipeline::Options::queue_depth). Also the rebuild concurrency bound.
  std::size_t stripes_in_flight = 2;
  /// Token bucket on scanned store bytes: sustained MB/s (0 = unpaced) and
  /// the burst the bucket may accumulate while scrub is idle or gated.
  double rate_mbps = 0.0;
  double burst_bytes = 8.0 * 1024 * 1024;
  /// Idle-slot gate: before each stripe, hold while the Codec has more jobs
  /// in flight than this Scrubber's own — i.e. while foreground traffic is
  /// active. Bounded by max_stall so a saturated node still gets scrubbed.
  bool yield_to_foreground = true;
  std::chrono::milliseconds max_stall{5};
  /// Custom gate (wins over yield_to_foreground when set): scrub holds
  /// while it returns true. Wire it to an admission queue's depth.
  std::function<bool()> hold;
  /// Cluster-wide repair-bandwidth cap (borrowed, may be shared by many
  /// Scrubbers; must outlive them). Drawn *in addition to* this Scrubber's
  /// own token bucket: rate_mbps bounds one array's scan, the shared
  /// governor bounds the fleet's aggregate repair traffic.
  SharedBandwidth* shared_bandwidth = nullptr;
  /// When false, scrub only detects and counts — no repair writes.
  bool repair = true;
  /// Raw-device mode (STAIR_IO_DIRECT): chunk reads — and the rebuild
  /// target's whole-chunk writes — go through O_DIRECT fds with aligned
  /// leased staging whenever the store layout is padded (block > 1).
  /// Sector-granular repair patches stay buffered: they are sub-block by
  /// nature. Filesystems that refuse O_DIRECT fall back to buffered opens.
  bool direct = io::direct_from_env();
  /// IO engine (borrowed — share the pipeline's to test phase-scoped fault
  /// plans); nullptr: the Scrubber creates and owns one per `backend`.
  io::Engine* engine = nullptr;
  io::Backend backend = io::Backend::kAuto;
  io::Engine::Options io;
};

/// One pass's outcome. `ok` means no fatal error; `completed` additionally
/// means the pass was not cut short by stop().
struct ScrubReport {
  bool ok = false;
  bool completed = false;
  std::string error;                      // first fatal error (empty when ok)
  std::size_t stripes = 0;                // stripes in the store
  std::size_t stripes_scanned = 0;        // stripes actually walked
  std::size_t stripes_degraded = 0;       // at least one bad sector/chunk
  std::size_t stripes_unrecoverable = 0;  // damage outside the code's coverage
  std::size_t chunks_missing = 0;         // open/read failure or short chunk
  std::size_t sectors_corrupt = 0;        // checksum mismatches found
  std::size_t sectors_repaired = 0;       // reconstructed, verified, rewritten
  std::size_t repair_failures = 0;        // reconstruction failed verify/write
  std::size_t throttle_stalls = 0;        // times pacing/gating held the walk
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  /// Fold `p` into this report (background passes aggregate).
  void accumulate(const ScrubReport& p);
};

class Scrubber {
 public:
  explicit Scrubber(Codec& codec, ScrubOptions options = {});
  /// Stops the background loop, if running.
  ~Scrubber();

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// One full scrub pass over the store in `store_dir`: verify every sector
  /// of every stripe, repair what the options allow. Blocks until the pass
  /// drains (internally async: stripes_in_flight stripes overlap).
  ScrubReport scrub(const std::string& store_dir);

  /// Whole-device rebuild: device `device`'s file is recreated and every
  /// stripe's column reconstructed through the plan cache as a bounded
  /// stream (stripes_in_flight degraded reads + re-encodes in flight).
  /// Damaged sectors found on surviving devices are repaired on the way.
  ScrubReport rebuild_device(const std::string& store_dir, std::size_t device);

  /// Starts a background thread running scrub passes over `store_dir`
  /// every `pass_gap` (gap measured end-to-start). No-op if running.
  void start(const std::string& store_dir,
             std::chrono::milliseconds pass_gap = std::chrono::milliseconds(0));
  /// Stops the background loop (current pass winds down at the next stripe
  /// boundary) and returns the aggregate of every pass it ran.
  ScrubReport stop();

  std::uint64_t passes_completed() const {
    return passes_completed_.load(std::memory_order_relaxed);
  }
  /// Aggregate of background passes so far (also returned by stop()).
  ScrubReport background_report() const;

  io::Engine& engine() { return *engine_; }
  Codec& codec() { return codec_; }
  /// Slot-pool high-water mark — proves the ring never exceeded
  /// stripes_in_flight (the rebuild concurrency bound).
  std::size_t slots_created() const { return slots_.created(); }

 private:
  struct Slot;
  struct Pass;

  ScrubReport run_pass(const std::string& store_dir,
                       std::optional<std::size_t> rebuild_device);
  void scan_stripe(Pass& pass, std::size_t stripe);
  /// Hashes chunk `device` of `stripe` right after its read completes —
  /// while the bytes are still warm in cache — recording per-sector verdicts
  /// into the slot. The last chunk to finish runs assemble_stripe. (One
  /// whole-stripe verify task after all n reads re-touches ~n chunks cold;
  /// at depth > 1 those re-touches thrash and rebuild throughput *drops* as
  /// stripes_in_flight rises. Per-chunk verify is the fix.)
  void verify_chunk(Pass& pass, WorkspacePool<Slot>::Lease slot,
                    std::size_t stripe, std::size_t device);
  void assemble_stripe(Pass& pass, WorkspacePool<Slot>::Lease slot, std::size_t stripe);
  void repair_stripe(Pass& pass, WorkspacePool<Slot>::Lease slot, std::size_t stripe);
  void pace(Pass& pass, std::size_t bytes);

  Codec& codec_;
  ScrubOptions options_;
  std::unique_ptr<io::Engine> owned_engine_;
  io::Engine* engine_;
  WorkspacePool<Slot> slots_;
  /// Aligned chunk staging (sized per pass). Deliberately NOT registered
  /// with the engine: the engine holds one registered set and it belongs to
  /// the foreground pipeline; scrub is a guest and takes plain transfers on
  /// aligned buffers (O_DIRECT still works — alignment is what it needs).
  std::unique_ptr<IoBufferPool> buffers_;
  /// This Scrubber's own decode jobs in flight — what the idle-slot gate
  /// subtracts from Codec::jobs_in_flight() to see *foreground* pressure.
  std::atomic<std::size_t> own_jobs_{0};

  // Token bucket (guarded by bucket_mu_).
  std::mutex bucket_mu_;
  double tokens_ = 0.0;
  std::chrono::steady_clock::time_point bucket_refill_{};

  // Background loop.
  std::thread loop_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> passes_completed_{0};
  mutable std::mutex report_mu_;
  ScrubReport background_report_;  // guarded by report_mu_
};

}  // namespace stair
