// Figure 15: update penalty of STAIR codes (average plus min/max error bars
// over all e per s) versus SD codes (s <= 3) and Reed-Solomon, n = r = 16.
//
// Expected shape: RS = m exactly; SD and STAIR above RS; STAIR's range
// brackets SD with the average sometimes modestly higher (§6.3).

#include <iostream>

#include "bench_util.h"
#include "stair/update_analysis.h"

using namespace stair;
using namespace stair::bench;

int main() {
  const std::size_t n = 16, r = 16;
  std::cout << "=== Figure 15: update penalty, STAIR vs SD vs RS, n = r = 16 ===\n\n";

  for (std::size_t m : {1, 2, 3}) {
    TablePrinter table("m = " + std::to_string(m));
    table.set_header({"code", "avg", "min(e)", "max(e)"});
    table.add_row({"RS", format_sig(rs_update_penalty(m), 4), "-", "-"});
    for (std::size_t s = 1; s <= 4; ++s) {
      if (s <= 3) {
        const SdCode sd({.n = n, .r = r, .m = m, .s = s});
        table.add_row({"SD s=" + std::to_string(s), format_sig(sd.update_penalty(), 4),
                       "-", "-"});
      }
      double sum = 0.0, lo = 1e300, hi = 0.0;
      std::size_t count = 0;
      for (const auto& e : enumerate_coverage_vectors(s, r, n - m)) {
        const StairCode code({.n = n, .r = r, .m = m, .e = e});
        const double avg = update_penalty(code).average;
        sum += avg;
        lo = std::min(lo, avg);
        hi = std::max(hi, avg);
        ++count;
      }
      table.add_row({"STAIR s=" + std::to_string(s), format_sig(sum / count, 4),
                     format_sig(lo, 4), format_sig(hi, 4)});
    }
    table.print(std::cout);
  }

  std::cout << "Shape check: RS penalty = m; STAIR min/max brackets SD per s; all\n"
               "parity-sector codes pay more than RS (§6.3).\n";
  return 0;
}
