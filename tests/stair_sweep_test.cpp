// Randomized configuration sweep: a wide net over the (n, r, m, e, w, mode,
// MDS-kind) space asserting the core invariants on every sampled code —
// encoding-method equivalence, Eq. 5/6 cost exactness, systematic data
// preservation, and recovery of randomly drawn within-coverage patterns.
// This is the property-test safety net behind the targeted suites.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "stair/cost_model.h"
#include "stair/stair_code.h"
#include "util/rng.h"

namespace stair {
namespace {

struct SweepCase {
  std::uint64_t seed;
  std::string name() const { return "seed" + std::to_string(seed); }
};

StairConfig random_config(Rng& rng) {
  for (;;) {
    StairConfig cfg;
    cfg.n = 4 + rng.next_below(12);          // 4..15
    cfg.r = 2 + rng.next_below(9);           // 2..10
    cfg.m = rng.next_below(std::min<std::size_t>(cfg.n - 1, 3) + 1);  // 0..3
    const std::size_t max_mp = std::min<std::size_t>(cfg.n - cfg.m, 4);
    const std::size_t mp = 1 + rng.next_below(max_mp);
    cfg.e.clear();
    for (std::size_t l = 0; l < mp; ++l) cfg.e.push_back(1 + rng.next_below(cfg.r));
    std::sort(cfg.e.begin(), cfg.e.end());
    cfg.w = rng.chance(0.15) ? 16 : 8;
    if (cfg.minimum_w() > cfg.w) cfg.w = cfg.minimum_w();
    try {
      cfg.validate();
      return cfg;
    } catch (...) {
      continue;  // redraw (e.g. coverage ate all the data)
    }
  }
}

class StairSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(StairSweepTest, CoreInvariantsHoldOnRandomConfigs) {
  Rng rng(GetParam().seed);
  for (int round = 0; round < 6; ++round) {
    const StairConfig cfg = random_config(rng);
    const GlobalParityMode mode =
        rng.chance(0.5) ? GlobalParityMode::kInside : GlobalParityMode::kOutside;
    const auto kind = rng.chance(0.25) ? SystematicMdsCode::Kind::kVandermonde
                                       : SystematicMdsCode::Kind::kCauchy;
    SCOPED_TRACE(cfg.to_string() +
                 (mode == GlobalParityMode::kInside ? " inside" : " outside"));
    const StairCode code(cfg, mode, kind);

    // Invariant 1: Eq. 5/6 equal the actual schedule sizes.
    ASSERT_EQ(code.mult_xor_count(EncodingMethod::kUpstairs), upstairs_mult_xors(cfg));
    ASSERT_EQ(code.mult_xor_count(EncodingMethod::kDownstairs), downstairs_mult_xors(cfg));

    // Invariant 2: the three methods produce identical stripes and encoding
    // preserves the data region. Each method is run twice — through the
    // compiled replay (encode()) and the uncompiled reference replay
    // (execute(Schedule)) — which must produce byte-identical stripes.
    const std::size_t symbol = 8;
    StripeBuffer stripe(code, symbol);
    std::vector<std::uint8_t> data(stripe.data_size());
    rng.fill(data);
    stripe.set_data(data);

    auto stripe_bytes = [&] {
      std::vector<std::uint8_t> bytes;
      for (const auto& region : stripe.view().stored)
        bytes.insert(bytes.end(), region.begin(), region.end());
      for (const auto& region : stripe.view().outside_globals)
        bytes.insert(bytes.end(), region.begin(), region.end());
      return bytes;
    };

    std::vector<std::uint8_t> reference;
    for (EncodingMethod method : {EncodingMethod::kUpstairs, EncodingMethod::kDownstairs,
                                  EncodingMethod::kStandard}) {
      code.encode(stripe.view(), method);
      std::vector<std::uint8_t> bytes = stripe_bytes();
      code.execute(code.encoding_schedule(method), stripe.view());
      ASSERT_EQ(stripe_bytes(), bytes) << "compiled replay diverged from reference";
      if (reference.empty())
        reference = std::move(bytes);
      else
        ASSERT_EQ(bytes, reference);
    }
    std::vector<std::uint8_t> out(stripe.data_size());
    stripe.get_data(out);
    ASSERT_EQ(out, data);

    // Invariant 3: a random within-coverage pattern decodes byte-exactly.
    std::vector<bool> mask(cfg.n * cfg.r, false);
    std::vector<std::size_t> chunks(cfg.n);
    for (std::size_t j = 0; j < cfg.n; ++j) chunks[j] = j;
    for (std::size_t j = cfg.n - 1; j > 0; --j)
      std::swap(chunks[j], chunks[rng.next_below(j + 1)]);
    std::size_t next = 0;
    const std::size_t dead = rng.next_below(cfg.m + 1);
    for (std::size_t d = 0; d < dead; ++d) {
      const std::size_t j = chunks[next++];
      for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + j] = true;
    }
    const std::size_t hit = rng.next_below(cfg.m_prime() + 1);
    for (std::size_t l = 0; l < hit; ++l) {
      const std::size_t j = chunks[next++];
      const std::size_t budget = cfg.e[cfg.m_prime() - 1 - l];  // descending slots
      const std::size_t losses = 1 + rng.next_below(budget);
      for (std::size_t q = 0; q < losses; ++q)
        mask[rng.next_below(cfg.r) * cfg.n + j] = true;  // dups fine
    }
    ASSERT_TRUE(code.is_recoverable(mask));
    Rng garbage(GetParam().seed * 7 + round);
    for (std::size_t idx = 0; idx < mask.size(); ++idx)
      if (mask[idx]) garbage.fill(stripe.view().stored[idx]);
    ASSERT_TRUE(code.decode(stripe.view(), mask));
    stripe.get_data(out);
    ASSERT_EQ(out, data);
  }
}

std::vector<SweepCase> sweep_seeds() {
  std::vector<SweepCase> cases;
  for (std::uint64_t s = 1; s <= 24; ++s) cases.push_back({s});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, StairSweepTest, ::testing::ValuesIn(sweep_seeds()),
                         [](const auto& info) { return info.param.name(); });

}  // namespace
}  // namespace stair
