// IO pipeline throughput: pipelined file encode/decode vs the same staged
// pipeline running against memory, swept over queue depth (stripes in
// flight).
//
// Three tiers per op:
//   codec   — pure in-memory Codec batch: region compute only, no staging,
//             no checksums, no IO. The physics ceiling (bench_batch's cells).
//   mem     — the full pipeline (staging copies, per-sector checksums,
//             manifest) against an in-memory "filesystem" engine: every
//             stage except real file IO.
//   file    — the full pipeline against real files through the async engine.
//
// The acceptance shape this bench guards: at queue depth >= 4, file-backed
// encode and decode reach >= 0.8x the mem tier — real IO overlaps compute
// instead of serializing in front of it (`vs_mem` in the JSON). `vs_codec`
// reports what the integrity+staging machinery itself costs, which depth
// cannot hide on a saturated machine — that is the pipeline's price, not
// the IO engine's.
//
// Every cell lands in BENCH_io_pipeline.json; STAIR_BENCH_SMOKE=1 is the CI
// configuration (smaller file, JSON to the repo root).
// STAIR_IO_BACKEND=threads|uring pins the IO engine (auto otherwise).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gf/kernel.h"
#include "stair/io_pipeline.h"

using namespace stair;
using namespace stair::bench;

namespace fs = std::filesystem;

namespace {

/// In-memory "filesystem" engine: path-keyed byte buffers, transfers are
/// memcpys completing inline. The pipeline's stages all run; only real file
/// IO is absent — the baseline that isolates what disk adds.
class MemEngine : public io::Engine {
 public:
  io::Backend backend() const override { return io::Backend::kThreads; }

  // OpenMode is irrelevant in memory: direct requests just open "buffered".
  int open_read(const std::string& path,
                io::OpenMode = io::OpenMode::kBuffered) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (!files_.count(path)) return -1;
    handles_[next_fd_] = path;
    return next_fd_++;
  }

  int open_write(const std::string& path,
                 io::OpenMode = io::OpenMode::kBuffered) override {
    std::lock_guard<std::mutex> lock(mu_);
    files_[path].clear();
    handles_[next_fd_] = path;
    return next_fd_++;
  }

  void close(int fd) override {
    std::lock_guard<std::mutex> lock(mu_);
    handles_.erase(fd);
  }

  std::uint64_t file_size(int fd) const override {
    std::lock_guard<std::mutex> lock(mu_);
    auto h = handles_.find(fd);
    return h == handles_.end() ? 0 : files_.at(h->second).size();
  }

  // Both transfer memcpys stay under mu_: a concurrent write to the same
  // file may resize (reallocate) its vector out from under them.

  void read(int fd, std::uint64_t offset, std::span<std::uint8_t> buf,
            io::Callback cb) override {
    io::Result r{9 /*EBADF*/, 0};
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto h = handles_.find(fd);
      if (h != handles_.end()) {
        const std::vector<std::uint8_t>& f = files_[h->second];
        const std::size_t have =
            offset >= f.size() ? 0 : std::min<std::size_t>(buf.size(), f.size() - offset);
        std::memcpy(buf.data(), f.data() + offset, have);
        r = {0, have};
      }
    }
    cb(r);
  }

  void write(int fd, std::uint64_t offset, std::span<const std::uint8_t> buf,
             io::Callback cb) override {
    io::Result r{9, 0};
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto h = handles_.find(fd);
      if (h != handles_.end()) {
        std::vector<std::uint8_t>& f = files_[h->second];
        if (f.size() < offset + buf.size()) f.resize(offset + buf.size());
        std::memcpy(f.data() + offset, buf.data(), buf.size());
        r = {0, buf.size()};
      }
    }
    cb(r);
  }

  void flush() override {}

  int truncate(int fd, std::uint64_t size) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto h = handles_.find(fd);
    if (h == handles_.end()) return 9;
    files_[h->second].resize(size);
    return 0;
  }

  void put(const std::string& path, std::vector<std::uint8_t> bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    files_[path] = std::move(bytes);
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<std::uint8_t>> files_;
  std::map<int, std::string> handles_;
  int next_fd_ = 1 << 20;  // synthetic handles, disjoint from real fds
};

struct Cell {
  std::string op;  // "encode" | "decode" | "decode_degraded"
  std::size_t queue_depth;
  double mbps;
  double vs_mem;    // ratio against the mem-engine pipeline (same op)
  double vs_codec;  // ratio against the pure in-memory Codec batch
};

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = parse_env(argc, argv);
  const StairConfig cfg{.n = 8, .r = 16, .m = 2, .e = {1, 2}};
  const std::size_t symbol = env.smoke ? (16u * 1024) : (64u * 1024);
  const std::size_t stripes = env.smoke ? 12 : 32;

  const StairCode code(cfg);
  Codec codec(code);
  const std::size_t stripe_bytes = symbol * cfg.n * cfg.r;
  const std::size_t stripe_data = code.data_symbol_count() * symbol;
  const std::size_t file_bytes = stripes * stripe_data;

  const fs::path dir = fs::temp_directory_path() / "stair_bench_io_pipeline";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path input = dir / "input.bin";
  const fs::path store = dir / "store";
  const fs::path output = dir / "output.bin";
  std::vector<std::uint8_t> input_bytes(file_bytes);
  {
    Rng rng(7);
    rng.fill(input_bytes);
    std::ofstream out(input, std::ios::binary);
    out.write(reinterpret_cast<const char*>(input_bytes.data()),
              static_cast<std::streamsize>(input_bytes.size()));
  }

  const char* io_backend = io::backend_name(IoPipeline(codec).engine().backend());
  std::cout << "=== IO pipeline: file coding vs memory-backed pipeline vs pure codec ===\n"
            << cfg.to_string() << ", " << (stripe_bytes >> 20) << " MB stripes, "
            << stripes << "-stripe file (" << (file_bytes >> 20) << " MB), pool width "
            << env.pool_width() << ", IO backend " << io_backend
            << (env.smoke ? "  [smoke]" : "") << "\n\n";

  // --- tier 1: pure in-memory Codec batch (no staging, checksums, or IO) ---
  const std::size_t mem_batch = 8;
  std::vector<StripeBuffer> mem_stripes;
  for (std::size_t i = 0; i < mem_batch; ++i)
    mem_stripes.push_back(make_encoded_stripe(code, symbol, 42 + i));
  std::vector<bool> mask(cfg.n * cfg.r, false);
  for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + 3] = true;

  const double codec_encode = measure_mbps(
      [&] {
        for (auto& s : mem_stripes) codec.submit_encode(s.view());
        codec.wait_all();
      },
      stripe_bytes * mem_batch);
  const double codec_decode = measure_mbps(
      [&] {
        for (auto& s : mem_stripes) codec.submit_decode(s.view(), mask);
        codec.wait_all();
      },
      stripe_bytes * mem_batch);

  // --- tier 2: full pipeline against the in-memory engine ------------------
  MemEngine mem_fs;
  mem_fs.put(input.string(), input_bytes);
  // The mem baseline stays buffered/unpadded regardless of STAIR_IO_DIRECT:
  // it is the fixed reference the file tiers are measured against.
  IoPipeline mem_pipeline(codec, {.queue_depth = 4, .symbol_bytes = symbol,
                                  .direct = false, .engine = &mem_fs});
  const double mem_encode = measure_mbps(
      [&] {
        const auto st = mem_pipeline.encode_file(input.string(), store.string());
        if (!st.ok) {
          std::fprintf(stderr, "mem encode failed: %s\n", st.error.c_str());
          std::exit(1);
        }
      },
      stripe_bytes * stripes);
  const double mem_decode = measure_mbps(
      [&] {
        const auto st = mem_pipeline.decode_file(store.string(), output.string());
        if (!st.ok) {
          std::fprintf(stderr, "mem decode failed: %s\n", st.error.c_str());
          std::exit(1);
        }
      },
      stripe_bytes * stripes);

  std::printf("pure codec batch:       encode %.0f MB/s, decode %.0f MB/s\n", codec_encode,
              codec_decode);
  std::printf("mem-backed pipeline:    encode %.0f MB/s, decode %.0f MB/s "
              "(staging+checksum cost: %.2fx / %.2fx)\n\n",
              mem_encode, mem_decode, mem_encode / codec_encode,
              mem_decode / codec_decode);

  // --- tier 3: real files, swept over queue depth --------------------------
  std::vector<Cell> cells;
  TablePrinter table("file-backed pipeline (MB/s over stripe bytes) vs queue depth");
  table.set_header({"depth", "encode", "vs mem", "decode", "vs mem", "degraded", "vs mem"});
  for (std::size_t depth : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    IoPipeline pipeline(codec, {.queue_depth = depth, .symbol_bytes = symbol});
    const double enc = measure_mbps(
        [&] {
          const auto st = pipeline.encode_file(input.string(), store.string());
          if (!st.ok) {
            std::fprintf(stderr, "encode failed: %s\n", st.error.c_str());
            std::exit(1);
          }
        },
        stripe_bytes * stripes);
    const double dec = measure_mbps(
        [&] {
          const auto st = pipeline.decode_file(store.string(), output.string());
          if (!st.ok) {
            std::fprintf(stderr, "decode failed: %s\n", st.error.c_str());
            std::exit(1);
          }
        },
        stripe_bytes * stripes);
    fs::remove(StripeStore::device_path(store.string(), 3));
    const double deg = measure_mbps(
        [&] {
          const auto st = pipeline.decode_file(store.string(), output.string());
          if (!st.ok || st.degraded_stripes != stripes) {
            std::fprintf(stderr, "degraded decode failed: %s\n", st.error.c_str());
            std::exit(1);
          }
        },
        stripe_bytes * stripes);

    cells.push_back({"encode", depth, enc, enc / mem_encode, enc / codec_encode});
    cells.push_back({"decode", depth, dec, dec / mem_decode, dec / codec_decode});
    cells.push_back(
        {"decode_degraded", depth, deg, deg / mem_decode, deg / codec_decode});
    table.add_row({std::to_string(depth), format_sig(enc, 4), format_sig(enc / mem_encode, 3),
                   format_sig(dec, 4), format_sig(dec / mem_decode, 3), format_sig(deg, 4),
                   format_sig(deg / mem_decode, 3)});
  }
  table.print(std::cout);

  // --- tier 4: raw-device mode matrix at depth 4 ---------------------------
  // direct-vs-buffered x fixed-vs-unregistered, each pipeline owning a fresh
  // engine so its stats isolate the mode. On tmpfs O_DIRECT may engage or
  // fall back per kernel; direct_fallbacks in the JSON says which happened,
  // and the CI gate only fires when the direct path really ran.
  struct ModeCell {
    std::string mode, op;
    double mbps;
    io::Engine::Stats stats;
  };
  std::vector<ModeCell> mode_cells;
  const struct {
    const char* name;
    bool direct, fixed;
  } kModes[] = {{"buffered", false, false},
                {"buffered_fixed", false, true},
                {"direct", true, false},
                {"direct_fixed", true, true}};
  TablePrinter mtable("raw-device mode matrix (MB/s, depth 4)");
  mtable.set_header({"mode", "encode", "decode", "direct opens", "fallbacks", "fixed rate"});
  for (const auto& m : kModes) {
    IoPipeline pipeline(codec, {.queue_depth = 4, .symbol_bytes = symbol,
                                .direct = m.direct, .fixed_buffers = m.fixed});
    const double enc = measure_mbps(
        [&] {
          const auto st = pipeline.encode_file(input.string(), store.string());
          if (!st.ok) {
            std::fprintf(stderr, "%s encode failed: %s\n", m.name, st.error.c_str());
            std::exit(1);
          }
        },
        stripe_bytes * stripes);
    const double dec = measure_mbps(
        [&] {
          const auto st = pipeline.decode_file(store.string(), output.string());
          if (!st.ok) {
            std::fprintf(stderr, "%s decode failed: %s\n", m.name, st.error.c_str());
            std::exit(1);
          }
        },
        stripe_bytes * stripes);
    const io::Engine::Stats st = pipeline.engine().stats();
    mode_cells.push_back({m.name, "encode", enc, st});
    mode_cells.push_back({m.name, "decode", dec, st});
    const std::uint64_t fixed_ops = st.fixed_reads + st.fixed_writes;
    const double fixed_rate =
        static_cast<double>(fixed_ops) /
        static_cast<double>(std::max<std::uint64_t>(1, fixed_ops + st.fixed_fallbacks));
    mtable.add_row({m.name, format_sig(enc, 4), format_sig(dec, 4),
                    std::to_string(st.direct_opens), std::to_string(st.direct_fallbacks),
                    format_sig(fixed_rate, 3)});
  }
  std::cout << "\n";
  mtable.print(std::cout);

  const std::string path = json_output_path("BENCH_io_pipeline.json", env.smoke);
  {
    std::ofstream out(path);
    out << "{\n  \"bench\": \"io_pipeline\",\n"
        << "  \"backend\": \"" << gf::backend_name(gf::active_backend()) << "\",\n"
        << "  \"io_backend\": \"" << io_backend << "\",\n"
        << "  \"smoke\": " << (env.smoke ? "true" : "false") << ",\n"
        << "  \"hardware_threads\": " << env.hardware_threads << ",\n"
        << "  \"pool_width\": " << env.pool_width() << ",\n"
        << "  \"stripe_bytes\": " << stripe_bytes << ",\n"
        << "  \"file_bytes\": " << file_bytes << ",\n"
        << "  \"codec_encode_mbps\": " << codec_encode << ",\n"
        << "  \"codec_decode_mbps\": " << codec_decode << ",\n"
        << "  \"mem_encode_mbps\": " << mem_encode << ",\n"
        << "  \"mem_decode_mbps\": " << mem_decode << ",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      out << "    {\"op\": \"" << c.op << "\", \"queue_depth\": " << c.queue_depth
          << ", \"mbps\": " << c.mbps << ", \"vs_mem\": " << c.vs_mem
          << ", \"vs_codec\": " << c.vs_codec << "}" << (i + 1 < cells.size() ? "," : "")
          << "\n";
    }
    out << "  ],\n  \"mode_cells\": [\n";
    for (std::size_t i = 0; i < mode_cells.size(); ++i) {
      const ModeCell& c = mode_cells[i];
      const std::uint64_t fixed_ops = c.stats.fixed_reads + c.stats.fixed_writes;
      out << "    {\"mode\": \"" << c.mode << "\", \"op\": \"" << c.op
          << "\", \"queue_depth\": 4, \"mbps\": " << c.mbps
          << ", \"direct_opens\": " << c.stats.direct_opens
          << ", \"direct_fallbacks\": " << c.stats.direct_fallbacks
          << ", \"fixed_ops\": " << fixed_ops
          << ", \"fixed_fallbacks\": " << c.stats.fixed_fallbacks << "}"
          << (i + 1 < mode_cells.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }
  std::cout << "\nWrote " << cells.size() + mode_cells.size() << " cells to " << path << "\n";
  std::cout << "Shape check: encode/decode vs-mem at depth >= 4 should be >= 0.8 (real\n"
               "IO overlapping compute, not serializing it); depth 1 shows the lockstep\n"
               "cost the overlap removes. vs_codec is the integrity+staging price.\n";
  fs::remove_all(dir);
  return 0;
}
