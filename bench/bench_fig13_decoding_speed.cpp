// Figure 13: decoding speed (MB/s) in the worst recoverable case — the m
// leftmost chunks entirely lost plus s further sectors spread over the next
// m' chunks per e — (a) varying n at r = 16, (b) varying r at n = 16.
// Also reproduces the §6.2.2 observation: device-only decoding (s = 0 losses)
// is substantially faster than the worst case.
//
// Expected shape: mirrors Figure 11 — STAIR above SD, rising with n and r;
// device-only decode speedup of tens of percent at n = r = 16.
//
// Every measured cell is appended to BENCH_decoding_speed.json (machine-
// readable, for the perf trajectory the CI tracks alongside
// BENCH_encoding_speed.json). STAIR_BENCH_SMOKE=1 (or --smoke) runs a
// reduced matrix on smaller stripes — the CI smoke configuration.

#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gf/kernel.h"

using namespace stair;
using namespace stair::bench;

namespace {

bool g_smoke = false;
std::size_t stripe_budget() { return g_smoke ? (8u << 20) : (32u << 20); }

struct Cell {
  std::string code;  // "stair" | "sd" | "stair_device_only"
  char axis;         // 'n' or 'r' sweep ('-' for the device-only section)
  std::size_t n, r, m, s;
  double mbps;
};
std::vector<Cell> g_cells;

// Worst-case mask per the paper: m leftmost chunks dead; the following m'
// chunks lose e_l sectors each at the bottom.
std::vector<bool> worst_mask(const StairConfig& cfg) {
  std::vector<bool> mask(cfg.n * cfg.r, false);
  for (std::size_t d = 0; d < cfg.m; ++d)
    for (std::size_t i = 0; i < cfg.r; ++i) mask[i * cfg.n + d] = true;
  for (std::size_t l = 0; l < cfg.m_prime(); ++l)
    for (std::size_t q = 0; q < cfg.e[l]; ++q)
      mask[(cfg.r - 1 - q) * cfg.n + cfg.m + l] = true;
  return mask;
}

double stair_decode_speed(std::size_t n, std::size_t r, std::size_t m, std::size_t s) {
  const auto e = worst_e_for_s(n, r, m, s, 8);
  if (e.empty() || m + e.size() > n) return 0.0;
  StairConfig cfg{.n = n, .r = r, .m = m, .e = e};
  if (cfg.minimum_w() > 8) cfg.w = cfg.minimum_w();
  const StairCode code(cfg);
  const std::size_t symbol = symbol_size_for_stripe(stripe_budget(), n, r);
  StripeBuffer stripe = make_encoded_stripe(code, symbol);
  const auto mask = worst_mask(cfg);
  auto schedule = code.build_decode_schedule(mask);
  if (!schedule) return 0.0;
  const CompiledSchedule plan(*schedule);  // compile once, replay many times
  Workspace ws;
  const std::size_t stripe_bytes = symbol * n * r;
  return measure_mbps([&] { code.execute(plan, stripe.view(), &ws); }, stripe_bytes);
}

std::optional<double> sd_decode_speed(std::size_t n, std::size_t r, std::size_t m,
                                      std::size_t s) {
  if (s > n - m) return std::nullopt;
  const SdCode code({.n = n, .r = r, .m = m, .s = s});
  const std::size_t symbol = symbol_size_for_stripe(stripe_budget(), n, r);
  SdStripe stripe(code, symbol);
  std::vector<bool> mask(n * r, false);
  for (std::size_t d = 0; d < m; ++d)
    for (std::size_t i = 0; i < r; ++i) mask[i * n + d] = true;
  for (std::size_t q = 0; q < s; ++q) mask[(r - 1) * n + m + q] = true;
  auto schedule = code.build_decode_schedule(mask);
  if (!schedule) return std::nullopt;
  const std::size_t stripe_bytes = symbol * n * r;
  return measure_mbps([&] { schedule->execute(stripe.regions); }, stripe_bytes);
}

double stair_device_only_speed(std::size_t n, std::size_t r, std::size_t m) {
  StairConfig cfg{.n = n, .r = r, .m = m, .e = {1}};
  const StairCode code(cfg);
  const std::size_t symbol = symbol_size_for_stripe(stripe_budget(), n, r);
  StripeBuffer stripe = make_encoded_stripe(code, symbol);
  std::vector<bool> mask(n * r, false);
  for (std::size_t d = 0; d < m; ++d)
    for (std::size_t i = 0; i < r; ++i) mask[i * n + d] = true;
  auto schedule = code.build_decode_schedule(mask);
  const CompiledSchedule plan(*schedule);
  Workspace ws;
  return measure_mbps([&] { code.execute(plan, stripe.view(), &ws); },
                      symbol * n * r);
}

void run_axis(const std::string& title, bool vary_n) {
  const std::vector<std::size_t> ms = g_smoke ? std::vector<std::size_t>{2}
                                              : std::vector<std::size_t>{1, 2, 3};
  const std::vector<std::size_t> vs =
      g_smoke ? std::vector<std::size_t>{8, 16}
              : std::vector<std::size_t>{4, 8, 12, 16, 20, 24, 28, 32};
  const std::size_t max_stair_s = g_smoke ? 2 : 4;
  const std::size_t max_sd_s = g_smoke ? 1 : 3;

  for (std::size_t m : ms) {
    TablePrinter table(title + ", m = " + std::to_string(m) + "  (MB/s)");
    std::vector<std::string> header{vary_n ? "n" : "r"};
    for (std::size_t s = 1; s <= max_sd_s; ++s) header.push_back("SD s=" + std::to_string(s));
    for (std::size_t s = 1; s <= max_stair_s; ++s)
      header.push_back("STAIR s=" + std::to_string(s));
    table.set_header(header);
    for (std::size_t v : vs) {
      const std::size_t n = vary_n ? v : 16;
      const std::size_t r = vary_n ? 16 : v;
      if (n <= m + 4) continue;
      std::vector<std::string> row{std::to_string(v)};
      for (std::size_t s = 1; s <= max_sd_s; ++s) {
        const auto speed = sd_decode_speed(n, r, m, s);
        if (speed) g_cells.push_back({"sd", vary_n ? 'n' : 'r', n, r, m, s, *speed});
        row.push_back(speed ? format_sig(*speed, 4) : "-");
      }
      for (std::size_t s = 1; s <= max_stair_s; ++s) {
        const double speed = stair_decode_speed(n, r, m, s);
        if (speed > 0) g_cells.push_back({"stair", vary_n ? 'n' : 'r', n, r, m, s, speed});
        row.push_back(format_sig(speed, 4));
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }
}

void write_json(const std::string& filename) {
  const std::string path = json_output_path(filename, g_smoke);
  std::ofstream out(path);
  out << "{\n  \"bench\": \"fig13_decoding_speed\",\n"
      << "  \"backend\": \"" << gf::backend_name(gf::active_backend()) << "\",\n"
      << "  \"smoke\": " << (g_smoke ? "true" : "false") << ",\n"
      << "  \"stripe_bytes\": " << stripe_budget() << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < g_cells.size(); ++i) {
    const Cell& c = g_cells[i];
    out << "    {\"code\": \"" << c.code << "\", \"axis\": \"" << c.axis
        << "\", \"n\": " << c.n << ", \"r\": " << c.r << ", \"m\": " << c.m
        << ", \"s\": " << c.s << ", \"mbps\": " << c.mbps << "}"
        << (i + 1 < g_cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nWrote " << g_cells.size() << " cells to " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  g_smoke = parse_env(argc, argv).smoke;

  std::cout << "=== Figure 13: worst-case decoding speed, STAIR vs SD ===\n";
  std::cout << "GF region backend: " << gf::backend_name(gf::active_backend())
            << (g_smoke ? "  [smoke matrix]" : "") << "\n\n";
  run_axis("(a) varying n, r = 16", /*vary_n=*/true);
  run_axis("(b) varying r, n = 16", /*vary_n=*/false);

  // §6.2.2: device-only decoding vs the s = 1 worst case at n = r = 16.
  TablePrinter table("§6.2.2: device-only decode speedup vs s=1 worst case, n=r=16");
  table.set_header({"m", "device-only MB/s", "worst-case s=1 MB/s", "speedup %"});
  for (std::size_t m : g_smoke ? std::vector<std::size_t>{2}
                               : std::vector<std::size_t>{1, 2, 3}) {
    const double dev = stair_device_only_speed(16, 16, m);
    const double worst = stair_decode_speed(16, 16, m, 1);
    g_cells.push_back({"stair_device_only", '-', 16, 16, m, 0, dev});
    table.add_row({std::to_string(m), format_sig(dev, 4), format_sig(worst, 4),
                   format_sig((dev / worst - 1.0) * 100.0, 3)});
  }
  table.print(std::cout);

  write_json("BENCH_decoding_speed.json");
  std::cout << "Shape check: STAIR > SD; speeds rise with n, r; device-only decode\n"
               "is noticeably faster than the worst case (paper: +79/+29/+12%).\n";
  return 0;
}
