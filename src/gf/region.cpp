#include "gf/region.h"

#include <cassert>
#include <cstring>

#ifdef __SSSE3__
#include <tmmintrin.h>
#endif

namespace stair::gf {

namespace {

// ---------------------------------------------------------------------------
// w = 8
// ---------------------------------------------------------------------------

#ifdef __SSSE3__
// pshufb split-table kernel: the product a*x for byte x splits as
// a*(x_lo ^ x_hi<<4) = table_lo[x_lo] ^ table_hi[x_hi]; both tables have 16
// entries, so one _mm_shuffle_epi8 each computes 16 products per iteration.
void mult_xor_w8_ssse3(const Field& f, std::uint8_t a,
                       const std::uint8_t* src, std::uint8_t* dst, std::size_t n) {
  alignas(16) std::uint8_t lo[16], hi[16];
  for (int i = 0; i < 16; ++i) {
    lo[i] = static_cast<std::uint8_t>(f.mul(a, static_cast<std::uint32_t>(i)));
    hi[i] = static_cast<std::uint8_t>(f.mul(a, static_cast<std::uint32_t>(i) << 4));
  }
  const __m128i tlo = _mm_load_si128(reinterpret_cast<const __m128i*>(lo));
  const __m128i thi = _mm_load_si128(reinterpret_cast<const __m128i*>(hi));
  const __m128i mask = _mm_set1_epi8(0x0f);

  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i plo = _mm_shuffle_epi8(tlo, _mm_and_si128(x, mask));
    const __m128i phi = _mm_shuffle_epi8(thi, _mm_and_si128(_mm_srli_epi64(x, 4), mask));
    const __m128i prod = _mm_xor_si128(plo, phi);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, prod));
  }
  const std::uint8_t* row = f.product_row8(a);
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}
#endif

#ifndef __SSSE3__
void mult_xor_w8_scalar(const Field& f, std::uint8_t a,
                        const std::uint8_t* src, std::uint8_t* dst, std::size_t n) {
  const std::uint8_t* row = f.product_row8(a);
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}
#endif

// ---------------------------------------------------------------------------
// w = 4 (two packed nibbles per byte)
// ---------------------------------------------------------------------------

void mult_xor_w4(const Field& f, std::uint32_t a,
                 const std::uint8_t* src, std::uint8_t* dst, std::size_t n) {
  // 256-entry table over the packed byte: both nibbles multiplied at once.
  std::uint8_t table[256];
  for (int x = 0; x < 256; ++x) {
    const std::uint32_t lo = f.mul(a, static_cast<std::uint32_t>(x) & 0xf);
    const std::uint32_t hi = f.mul(a, static_cast<std::uint32_t>(x) >> 4);
    table[x] = static_cast<std::uint8_t>(lo | (hi << 4));
  }
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= table[src[i]];
}

// ---------------------------------------------------------------------------
// w = 16 / w = 32: per-call split product tables over source bytes
// ---------------------------------------------------------------------------

#ifdef __SSSE3__
// Nibble split-table kernel for w = 16 (GF-Complete's SPLIT(16,4) idea,
// without the altmap layout): a * x decomposes over x's four nibbles, so
// eight 16-entry byte tables (low/high product byte per nibble position)
// turn 8 symbols per iteration into 8 pshufbs. Nibble indices are extracted
// in 16-bit lanes, leaving zero in the odd bytes; since every table maps
// index 0 to 0, the odd-byte lookups contribute nothing.
void mult_xor_w16_ssse3(const Field& f, std::uint32_t a,
                        const std::uint8_t* src, std::uint8_t* dst, std::size_t n,
                        std::size_t& done) {
  alignas(16) std::uint8_t tlo[4][16], thi[4][16];
  for (int k = 0; k < 4; ++k)
    for (std::uint32_t v = 0; v < 16; ++v) {
      const std::uint32_t prod = f.mul(a, v << (4 * k));
      tlo[k][v] = static_cast<std::uint8_t>(prod);
      thi[k][v] = static_cast<std::uint8_t>(prod >> 8);
    }
  __m128i lo[4], hi[4];
  for (int k = 0; k < 4; ++k) {
    lo[k] = _mm_load_si128(reinterpret_cast<const __m128i*>(tlo[k]));
    hi[k] = _mm_load_si128(reinterpret_cast<const __m128i*>(thi[k]));
  }
  const __m128i nib = _mm_set1_epi16(0x000f);

  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i idx0 = _mm_and_si128(x, nib);
    const __m128i idx1 = _mm_and_si128(_mm_srli_epi16(x, 4), nib);
    const __m128i idx2 = _mm_and_si128(_mm_srli_epi16(x, 8), nib);
    const __m128i idx3 = _mm_and_si128(_mm_srli_epi16(x, 12), nib);
    __m128i plo = _mm_shuffle_epi8(lo[0], idx0);
    plo = _mm_xor_si128(plo, _mm_shuffle_epi8(lo[1], idx1));
    plo = _mm_xor_si128(plo, _mm_shuffle_epi8(lo[2], idx2));
    plo = _mm_xor_si128(plo, _mm_shuffle_epi8(lo[3], idx3));
    __m128i phi = _mm_shuffle_epi8(hi[0], idx0);
    phi = _mm_xor_si128(phi, _mm_shuffle_epi8(hi[1], idx1));
    phi = _mm_xor_si128(phi, _mm_shuffle_epi8(hi[2], idx2));
    phi = _mm_xor_si128(phi, _mm_shuffle_epi8(hi[3], idx3));
    const __m128i prod = _mm_xor_si128(plo, _mm_slli_epi16(phi, 8));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, prod));
  }
  done = i;
}
#endif

void mult_xor_w16(const Field& f, std::uint32_t a,
                  const std::uint8_t* src, std::uint8_t* dst, std::size_t n) {
  assert(n % 2 == 0 && "w=16 region size must be a multiple of 2 bytes");
  std::size_t start = 0;
#ifdef __SSSE3__
  mult_xor_w16_ssse3(f, a, src, dst, n, start);
  if (start == n) return;
#endif
  // a * x = a*(x_lo) ^ a*(x_hi << 8): two 256-entry tables of 16-bit products.
  std::uint16_t tlo[256], thi[256];
  for (std::uint32_t x = 0; x < 256; ++x) {
    tlo[x] = static_cast<std::uint16_t>(f.mul(a, x));
    thi[x] = static_cast<std::uint16_t>(f.mul(a, x << 8));
  }
  for (std::size_t i = start; i < n; i += 2) {
    std::uint16_t x;
    std::memcpy(&x, src + i, 2);
    std::uint16_t d;
    std::memcpy(&d, dst + i, 2);
    d = static_cast<std::uint16_t>(d ^ tlo[x & 0xff] ^ thi[x >> 8]);
    std::memcpy(dst + i, &d, 2);
  }
}

void mult_xor_w32(const Field& f, std::uint32_t a,
                  const std::uint8_t* src, std::uint8_t* dst, std::size_t n) {
  assert(n % 4 == 0 && "w=32 region size must be a multiple of 4 bytes");
  // Four byte-indexed split tables.
  static thread_local std::uint32_t table[4][256];
  for (std::uint32_t b = 0; b < 4; ++b)
    for (std::uint32_t x = 0; x < 256; ++x)
      table[b][x] = f.mul(a, x << (8 * b));
  for (std::size_t i = 0; i < n; i += 4) {
    std::uint32_t x;
    std::memcpy(&x, src + i, 4);
    std::uint32_t d;
    std::memcpy(&d, dst + i, 4);
    d ^= table[0][x & 0xff] ^ table[1][(x >> 8) & 0xff] ^
         table[2][(x >> 16) & 0xff] ^ table[3][x >> 24];
    std::memcpy(dst + i, &d, 4);
  }
}

}  // namespace

void xor_region(std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  std::size_t i = 0;
  const std::size_t n = src.size();
  // Word-at-a-time XOR; compilers vectorize this loop readily.
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, src.data() + i, 8);
    std::memcpy(&b, dst.data() + i, 8);
    b ^= a;
    std::memcpy(dst.data() + i, &b, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void mult_xor_region(const Field& f, std::uint32_t a,
                     std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  if (a == 0 || src.empty()) return;
  if (a == 1) {
    xor_region(src, dst);
    return;
  }
  switch (f.w()) {
    case 4:
      mult_xor_w4(f, a, src.data(), dst.data(), src.size());
      break;
    case 8:
#ifdef __SSSE3__
      mult_xor_w8_ssse3(f, static_cast<std::uint8_t>(a), src.data(), dst.data(), src.size());
#else
      mult_xor_w8_scalar(f, static_cast<std::uint8_t>(a), src.data(), dst.data(), src.size());
#endif
      break;
    case 16:
      mult_xor_w16(f, a, src.data(), dst.data(), src.size());
      break;
    case 32:
      mult_xor_w32(f, a, src.data(), dst.data(), src.size());
      break;
    default:
      assert(false && "unsupported w");
  }
}

void mult_region(const Field& f, std::uint32_t a,
                 std::span<const std::uint8_t> src, std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  if (a == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (a == 1) {
    if (dst.data() != src.data()) std::memcpy(dst.data(), src.data(), src.size());
    return;
  }
  if (dst.data() == src.data()) {
    // In-place scale: the XOR-accumulating kernels cannot be reused because
    // clearing dst would destroy src. Symbol-at-a-time is fine here; in-place
    // scaling only appears on small scratch buffers, never on the data path.
    const int bytes = f.w() / 8;
    if (bytes == 0) {  // w = 4, packed nibbles
      for (std::size_t i = 0; i < dst.size(); ++i) {
        const std::uint32_t lo = f.mul(a, dst[i] & 0xf);
        const std::uint32_t hi = f.mul(a, dst[i] >> 4);
        dst[i] = static_cast<std::uint8_t>(lo | (hi << 4));
      }
      return;
    }
    for (std::size_t i = 0; i < dst.size(); i += bytes) {
      std::uint32_t x = 0;
      std::memcpy(&x, dst.data() + i, bytes);
      x = f.mul(a, x);
      std::memcpy(dst.data() + i, &x, bytes);
    }
    return;
  }
  // mult = clear + mult_xor; region kernels are XOR-accumulating by design.
  std::memset(dst.data(), 0, dst.size());
  mult_xor_region(f, a, src, dst);
}

bool has_simd_w8() {
#ifdef __SSSE3__
  return true;
#else
  return false;
#endif
}

}  // namespace stair::gf
