#include "stair/compiled_schedule.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_set>

#include "gf/region.h"

namespace stair {

CompiledSchedule::CompiledSchedule(const Schedule& schedule, std::size_t strip_bytes)
    : forced_strip_(strip_bytes) {
  std::unordered_set<std::uint32_t> touched;
  const gf::Field& f = schedule.field();
  ops_.reserve(schedule.ops().size());
  for (const auto& op : schedule.ops()) {
    Op compiled;
    compiled.output = op.output;
    touched.insert(op.output);
    bool self_ref = false;
    for (const auto& term : op.terms) {
      if (term.coeff == 0) continue;  // contributes nothing under replay
      if (term.input == op.output) self_ref = true;
      compiled.terms.push_back({gf::compiled_kernel(f, term.coeff), term.input});
      touched.insert(term.input);
    }
    compiled.zero_fill = self_ref || compiled.terms.empty();
    ops_.push_back(std::move(compiled));
  }
  touched_symbols_ = touched.size();
}

std::size_t CompiledSchedule::mult_xor_count() const {
  std::size_t count = 0;
  for (const auto& op : ops_) count += op.terms.size();
  return count;
}

std::size_t CompiledSchedule::strip_size(std::size_t symbol_size) const {
  std::size_t strip = forced_strip_
                          ? forced_strip_
                          : gf::region_cache_budget() / std::max<std::size_t>(1, touched_symbols_);
  strip &= ~std::size_t{63};  // keep strips 64-byte-granular (symbol-aligned for all w)
  if (strip < 64) strip = 64;
  return std::min(strip, symbol_size);
}

void CompiledSchedule::execute(std::span<const std::span<std::uint8_t>> symbols) const {
  if (ops_.empty()) return;
  execute_range(symbols, 0, symbols[ops_.front().output].size());
}

void CompiledSchedule::execute_range(std::span<const std::span<std::uint8_t>> symbols,
                                     std::size_t range_offset, std::size_t length) const {
  if (ops_.empty() || length == 0) return;
  assert(range_offset % 64 == 0);
  assert(range_offset + length <= symbols[ops_.front().output].size());
  const std::size_t strip = strip_size(length);

  for (std::size_t pos = 0; pos < length; pos += strip) {
    const std::size_t offset = range_offset + pos;
    const std::size_t len = std::min(strip, length - pos);
    for (const Op& op : ops_) {
      assert(op.output < symbols.size() &&
             symbols[op.output].size() >= range_offset + length);
      auto dst = symbols[op.output].subspan(offset, len);
      if (op.zero_fill) {
        std::memset(dst.data(), 0, len);
        for (const Term& term : op.terms) {
          assert(term.input < symbols.size() &&
                 symbols[term.input].size() >= range_offset + length);
          term.kernel->mult_xor(symbols[term.input].subspan(offset, len), dst);
        }
        continue;
      }
      const Term& first = op.terms.front();
      assert(first.input < symbols.size() &&
             symbols[first.input].size() >= range_offset + length);
      first.kernel->mult(symbols[first.input].subspan(offset, len), dst);
      for (std::size_t t = 1; t < op.terms.size(); ++t) {
        const Term& term = op.terms[t];
        assert(term.input < symbols.size() &&
               symbols[term.input].size() >= range_offset + length);
        term.kernel->mult_xor(symbols[term.input].subspan(offset, len), dst);
      }
    }
  }
}

CompiledSchedule Schedule::compile(std::size_t strip_bytes) const {
  return CompiledSchedule(*this, strip_bytes);
}

}  // namespace stair
