// Plain-text table printer used by the benchmark binaries to emit the rows
// and series the paper's figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace stair {

/// Accumulates rows of string cells and prints them with aligned columns.
/// Benchmarks use it to print paper-figure series in a diff-friendly layout.
class TablePrinter {
 public:
  /// `title` is printed above the table; pass "" for none.
  explicit TablePrinter(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row.
  void set_header(std::vector<std::string> header) { header_ = std::move(header); }

  /// Appends one data row; rows may be ragged (short rows are padded).
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders the table to `os` with space-aligned columns.
  void print(std::ostream& os) const;

  /// Renders the table as CSV (header first) to `os`.
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (benchmark output helper).
std::string format_sig(double value, int digits = 4);

}  // namespace stair
