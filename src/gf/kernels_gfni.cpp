// GFNI backend: compiled with -mavx2 -mgfni (see CMakeLists.txt). The
// byte-linear widths (w = 4/8) become single GF2P8AFFINEQB instructions per
// 32 bytes; w = 16 keeps the AVX2 shuffle kernel and w = 32 the wide-table
// loop. Only dispatched to after a runtime CPUID check.
#include "gf/kernels_impl.h"

#if !defined(__GFNI__) || !defined(__AVX2__)
#error "kernels_gfni.cpp must be compiled with GFNI and AVX2 enabled (-mgfni -mavx2)"
#endif

namespace stair::gf::detail {

KernelFns gfni_kernel_fns() { return impl_kernel_fns(); }

}  // namespace stair::gf::detail
