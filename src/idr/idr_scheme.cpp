#include "idr/idr_scheme.h"

#include <numeric>
#include <stdexcept>

namespace stair {

void IdrConfig::validate() const {
  if (n < 2 || r < 1) throw std::invalid_argument("IdrConfig: need n >= 2, r >= 1");
  if (m >= n) throw std::invalid_argument("IdrConfig: m must be < n");
  if (eps == 0 || eps >= r) throw std::invalid_argument("IdrConfig: need 0 < eps < r");
  if (w != 8 && w != 16) throw std::invalid_argument("IdrConfig: w must be 8 or 16");
  const std::size_t order = std::size_t{1} << w;
  if (n > order || r > order) throw std::invalid_argument("IdrConfig: stripe too large for w");
}

IdrScheme::IdrScheme(IdrConfig cfg)
    : cfg_([&] {
        cfg.validate();
        return cfg;
      }()),
      inner_(gf::field(cfg_.w), cfg_.r - cfg_.eps, cfg_.r),
      outer_(gf::field(cfg_.w), cfg_.n - cfg_.m, cfg_.n) {}

void IdrScheme::encode(std::span<const std::span<std::uint8_t>> symbols) const {
  const std::size_t n = cfg_.n, r = cfg_.r, m = cfg_.m, eps = cfg_.eps;
  if (symbols.size() != n * r) throw std::invalid_argument("IdrScheme::encode: wrong symbol count");

  // Inner (vertical) parities at the bottom of each data chunk.
  std::vector<std::span<const std::uint8_t>> data(r - eps);
  std::vector<std::span<std::uint8_t>> parity(eps);
  for (std::size_t j = 0; j < n - m; ++j) {
    for (std::size_t i = 0; i < r - eps; ++i) data[i] = symbols[i * n + j];
    for (std::size_t i = 0; i < eps; ++i) parity[i] = symbols[(r - eps + i) * n + j];
    inner_.encode(data, parity);
  }
  // Outer (horizontal) parities across every row, protecting inner parities too.
  std::vector<std::span<const std::uint8_t>> row_data(n - m);
  std::vector<std::span<std::uint8_t>> row_parity(m);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < n - m; ++j) row_data[j] = symbols[i * n + j];
    for (std::size_t k = 0; k < m; ++k) row_parity[k] = symbols[i * n + (n - m + k)];
    outer_.encode(row_data, row_parity);
  }
}

bool IdrScheme::is_recoverable(const std::vector<bool>& erased) const {
  const std::size_t n = cfg_.n, r = cfg_.r;
  if (erased.size() != n * r) return false;
  std::size_t damaged_beyond_inner = 0;
  for (std::size_t j = 0; j < n; ++j) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < r; ++i)
      if (erased[i * n + j]) ++count;
    // Outer parity chunks have no inner code; any loss defers to row repair.
    const bool inner_ok = j < n - cfg_.m && count <= cfg_.eps;
    if (count > 0 && !inner_ok) ++damaged_beyond_inner;
  }
  return damaged_beyond_inner <= cfg_.m;
}

bool IdrScheme::decode(std::span<const std::span<std::uint8_t>> symbols,
                       const std::vector<bool>& erased) const {
  const std::size_t n = cfg_.n, r = cfg_.r, m = cfg_.m, eps = cfg_.eps;
  if (!is_recoverable(erased)) return false;
  std::vector<bool> remaining = erased;

  // Inner repair of data chunks with <= eps losses.
  for (std::size_t j = 0; j < n - m; ++j) {
    std::vector<std::size_t> lost;
    for (std::size_t i = 0; i < r; ++i)
      if (remaining[i * n + j]) lost.push_back(i);
    if (lost.empty() || lost.size() > eps) continue;
    std::vector<std::size_t> avail;
    std::vector<std::span<const std::uint8_t>> avail_regions;
    for (std::size_t i = 0; i < r && avail.size() < r - eps; ++i) {
      if (remaining[i * n + j]) continue;
      avail.push_back(i);
      avail_regions.push_back(symbols[i * n + j]);
    }
    std::vector<std::span<std::uint8_t>> lost_regions;
    for (std::size_t i : lost) lost_regions.push_back(symbols[i * n + j]);
    inner_.decode(avail, avail_regions, lost, lost_regions);
    for (std::size_t i : lost) remaining[i * n + j] = false;
  }

  // Outer repair, row by row (at most m unknowns per row remain).
  for (std::size_t i = 0; i < r; ++i) {
    std::vector<std::size_t> lost;
    for (std::size_t j = 0; j < n; ++j)
      if (remaining[i * n + j]) lost.push_back(j);
    if (lost.empty()) continue;
    if (lost.size() > m) return false;
    std::vector<std::size_t> avail;
    std::vector<std::span<const std::uint8_t>> avail_regions;
    for (std::size_t j = 0; j < n && avail.size() < n - m; ++j) {
      if (remaining[i * n + j]) continue;
      avail.push_back(j);
      avail_regions.push_back(symbols[i * n + j]);
    }
    std::vector<std::span<std::uint8_t>> lost_regions;
    for (std::size_t j : lost) lost_regions.push_back(symbols[i * n + j]);
    outer_.decode(avail, avail_regions, lost, lost_regions);
    for (std::size_t j : lost) remaining[i * n + j] = false;
  }
  return true;
}

}  // namespace stair
