// Downstairs encoding (§5.1.2): sweep the stripe rows top to bottom,
// Crow-solving each row's m + m' parity/intermediate symbols, and complete
// intermediate-parity columns right to left (via Ccol and the zeroed outside
// globals) just before the sweep reaches the stair. In outside-global mode
// this is exactly the baseline two-phase encoding of §3. Both variants cost
// exactly Eq. 6 Mult_XORs.

#include <numeric>

#include "stair/builders.h"
#include "stair/stair_code.h"

namespace stair::internal {

namespace {

std::vector<std::size_t> iota_vec(std::size_t count, std::size_t start = 0) {
  std::vector<std::size_t> v(count);
  std::iota(v.begin(), v.end(), start);
  return v;
}

}  // namespace

Schedule build_downstairs_schedule(const StairCode& code) {
  const StairConfig& cfg = code.config();
  const StairLayout& layout = code.layout();
  const std::size_t n = cfg.n, r = cfg.r, m = cfg.m, mp = cfg.m_prime();
  const bool inside = code.mode() == GlobalParityMode::kInside;

  Schedule sch(code.field());
  auto row_ops = [&](std::size_t row, std::span<const std::size_t> available,
                     std::span<const std::size_t> targets) {
    emit_recovery_ops(sch, code.crow(), available, targets,
                      [&](std::size_t col) { return layout.id(row, col); });
  };
  auto col_ops = [&](std::size_t col, std::span<const std::size_t> available,
                     std::span<const std::size_t> targets) {
    emit_recovery_ops(sch, code.ccol(), available, targets,
                      [&](std::size_t row) { return layout.id(row, col); });
  };

  std::vector<bool> completed(mp, false);
  for (std::size_t i = 0; i < r; ++i) {
    if (inside) {
      // Complete intermediate column l (rows i..r-1) as soon as the i stored
      // rows above plus its e_l zero globals give the r knowns Ccol needs
      // (Figure 6 steps 3, 5, 6). The trigger fires exactly at i = r - e_l.
      for (std::size_t l = mp; l-- > 0;) {
        if (completed[l] || i + cfg.e[l] < r) continue;
        std::vector<std::size_t> available = iota_vec(i);
        for (std::size_t h = 0; h < cfg.e[l]; ++h) available.push_back(r + h);
        const std::vector<std::size_t> targets = iota_vec(r - i, i);
        col_ops(n + l, available, targets);
        completed[l] = true;
      }
    }

    // Row i: knowns are the data symbols of the row plus the completed
    // intermediates; targets are this row's inside globals, the m row
    // parities, and the not-yet-completed intermediates (Figure 6 steps
    // 1, 2, 4, 7). Outside mode: plain systematic Crow encoding (§3 phase 1).
    std::vector<std::size_t> available;
    std::vector<std::size_t> targets;
    for (std::size_t j = 0; j < n - m; ++j) {
      if (layout.is_inside_global(i, j))
        targets.push_back(j);
      else
        available.push_back(j);
    }
    for (std::size_t k = 0; k < m; ++k) targets.push_back(n - m + k);
    for (std::size_t l = 0; l < mp; ++l) {
      if (completed[l])
        available.push_back(n + l);
      else
        targets.push_back(n + l);
    }
    row_ops(i, available, targets);
  }

  if (!inside) {
    // §3 phase 2: Ccol-encode each intermediate column into its real outside
    // globals.
    const std::vector<std::size_t> col_rows = iota_vec(r);
    for (std::size_t l = 0; l < mp; ++l)
      col_ops(n + l, col_rows, iota_vec(cfg.e[l], r));
  }

  return sch;
}

}  // namespace stair::internal
