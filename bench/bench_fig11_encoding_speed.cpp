// Figure 11: encoding speed (MB/s) of STAIR codes (worst e per s, method
// auto-selected) versus SD codes (dense standard encoding, auto word size):
//   (a) varying n at r = 16,  (b) varying r at n = 16,  m in {1, 2, 3},
// STAIR s in {1..4}, SD s in {1..3}; ~32 MB stripes as in the paper.
//
// Expected shape: STAIR well above SD throughout (paper: +106% on average);
// both rise with n and r as the parity fraction shrinks; SD dips further
// when n*r > 255 forces it onto w = 16.

#include <iostream>
#include <optional>

#include "bench_util.h"

using namespace stair;
using namespace stair::bench;

namespace {

constexpr std::size_t kStripeBytes = 32u << 20;

double stair_speed(std::size_t n, std::size_t r, std::size_t m, std::size_t s) {
  const auto e = worst_e_for_s(n, r, m, s, 8);
  if (e.empty()) return 0.0;
  StairConfig cfg{.n = n, .r = r, .m = m, .e = e};
  if (cfg.minimum_w() > 8) cfg.w = cfg.minimum_w();
  const StairCode code(cfg);
  const std::size_t symbol = symbol_size_for_stripe(kStripeBytes, n, r);
  StripeBuffer stripe = make_encoded_stripe(code, symbol);
  Workspace ws;
  const std::size_t stripe_bytes = symbol * n * r;
  return measure_mbps([&] { code.encode(stripe.view(), EncodingMethod::kAuto, &ws); },
                      stripe_bytes);
}

std::optional<double> sd_speed(std::size_t n, std::size_t r, std::size_t m, std::size_t s) {
  if (s > n - m) return std::nullopt;
  const SdCode code({.n = n, .r = r, .m = m, .s = s});
  const std::size_t symbol = symbol_size_for_stripe(kStripeBytes, n, r);
  SdStripe stripe(code, symbol);
  const std::size_t stripe_bytes = symbol * n * r;
  return measure_mbps([&] { code.encode(stripe.regions); }, stripe_bytes);
}

void run_axis(const std::string& title, bool vary_n) {
  for (std::size_t m : {1, 2, 3}) {
    TablePrinter table(title + ", m = " + std::to_string(m) + "  (MB/s)");
    table.set_header({vary_n ? "n" : "r", "SD s=1", "SD s=2", "SD s=3", "STAIR s=1",
                      "STAIR s=2", "STAIR s=3", "STAIR s=4"});
    for (std::size_t v : {4, 8, 12, 16, 20, 24, 28, 32}) {
      const std::size_t n = vary_n ? v : 16;
      const std::size_t r = vary_n ? 16 : v;
      if (n <= m + 4) continue;  // leave room for data chunks
      std::vector<std::string> row{std::to_string(v)};
      for (std::size_t s = 1; s <= 3; ++s) {
        const auto speed = sd_speed(n, r, m, s);
        row.push_back(speed ? format_sig(*speed, 4) : "-");
      }
      for (std::size_t s = 1; s <= 4; ++s) row.push_back(format_sig(stair_speed(n, r, m, s), 4));
      table.add_row(row);
    }
    table.print(std::cout);
  }
}

}  // namespace

int main() {
  std::cout << "=== Figure 11: encoding speed, STAIR (worst e per s) vs SD ===\n\n";
  run_axis("(a) varying n, r = 16", /*vary_n=*/true);
  run_axis("(b) varying r, n = 16", /*vary_n=*/false);
  std::cout << "Shape check: STAIR > SD in every cell; speeds rise with n and r;\n"
               "STAIR mostly above 1000 MB/s.\n";
  return 0;
}
