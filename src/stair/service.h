// StorageNode — the served system over the fast data path.
//
// PRs 1–8 made a single caller fast: SIMD kernels, compiled schedules, a
// stripe-batch Codec session, an async O_DIRECT-capable IO pipeline, online
// scrub/repair. Nothing arbitrated between callers — every bench was one
// tenant in an open throughput loop. A StorageNode turns the data path into
// a long-running service where competing clients and background maintenance
// contend under explicit policy, and where the headline number becomes tail
// latency vs offered load instead of GB/s:
//
//   * Admission: per-tenant bounded queues. A submit against a full queue
//     (or a draining node) is rejected immediately — reject-with-backpressure,
//     never unbounded memory, never a blocked client thread. Rejects are
//     counted per tenant.
//   * Priority: foreground reads ahead of writes ahead of scans; background
//     scrub/repair runs below all of them, held off by the same policy — the
//     node wires the Scrubber's `hold` gate to its own foreground pressure
//     (queued + in-service requests), composing with the Scrubber's existing
//     Codec idle-slot gate and io::PhaseScope tagging into one policy.
//   * Fairness: within each priority class, tenants are served round-robin,
//     so one tenant flooding its queue cannot starve another's reads — the
//     flooder is bounded by its own queue, the victim by its own round.
//   * Batching: when read queues back up, small reads landing in the same
//     stripe span are coalesced into one shared stripe submission (one
//     read_range serving many requesters) — queue pressure buys IO merging
//     instead of queue-depth collapse.
//   * Metrics: per-tenant queue depth / rejects / completions, degraded-read
//     and failure counters, and mergeable log-bucketed latency histograms
//     (util/latency.h) per request class — p50/p99/p999, not averages.
//   * Lifecycle: start() opens the store and spawns the service; drain()
//     stops admitting, finishes everything in flight, and re-saves the
//     manifest (the store's recovery point); stop() drains and shuts down.
//     A new StorageNode on the same directory resumes byte-identically.
//
// Requests are in-process (submit(Request) -> Future): the node is the
// scheduling and accounting layer a network frontend would sit on, kept
// transport-free so tests and benches drive it at memory speed.
//
// Reads are served sector-granularly through IoPipeline::read_range —
// including degraded reads during a device rebuild. Writes are
// stripe-granular: the stripe is re-encoded through the Codec session, all n
// chunks rewritten, and the manifest's sector checksums and whole-file fold
// refreshed and re-saved, so a drained store is always self-consistent.
// Stripe-range locks order concurrent reads and writes of the same stripes;
// a write racing a scrub pass is safe by the Scrubber's proven-before-write
// rule (a stale-manifest reconstruction cannot pass re-verification, so the
// pass counts the stripe and moves on; the next pass sees the re-saved
// manifest).
//
// Thread-safety: submit()/stats() from any thread; Future::wait() blocks the
// caller only. Request buffers (out/data spans) must stay valid until the
// future completes. drain()/stop() may be called once, from one thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "stair/codec.h"
#include "stair/io_pipeline.h"
#include "stair/scrub_repair.h"
#include "util/latency.h"
#include "util/workspace_pool.h"

namespace stair {

/// Request classes in strict priority order (lower value = served first).
/// Scan is the bulk tier: same read path as kRead, scheduled below writes so
/// background-ish table scans cannot inflate point-read tails.
enum class RequestType : std::uint8_t { kRead = 0, kWrite = 1, kScan = 2 };
constexpr std::size_t kRequestClasses = 3;

struct Request {
  RequestType type = RequestType::kRead;
  /// Admission queue this request charges against (< Options::tenants).
  std::size_t tenant = 0;

  // Read / scan: serve original-file bytes [offset, offset + out.size()).
  std::uint64_t offset = 0;
  std::span<std::uint8_t> out;

  // Write: replace stripe `stripe`'s data with `data` (exactly the stripe's
  // data bytes — min(stripe_data, file_size - stripe * stripe_data)).
  std::size_t stripe = 0;
  std::span<const std::uint8_t> data;
};

struct Response {
  bool ok = false;
  /// True when admission refused the request (full tenant queue or draining
  /// node). Rejected requests never entered a queue; `error` says why.
  bool rejected = false;
  std::string error;
  std::size_t degraded_stripes = 0;  // stripes served through the plan cache
  std::uint64_t bytes = 0;           // payload bytes served / persisted
  double queue_seconds = 0.0;        // admission -> dispatch
  double service_seconds = 0.0;      // dispatch -> completion
};

namespace detail {
struct RequestState;
}

class StorageNode {
 public:
  struct Options {
    /// Admission queues (tenants are dense indices 0..tenants-1).
    std::size_t tenants = 4;
    /// Per-tenant bound on queued requests, all classes together — the
    /// admission controller's memory bound. A submit finding the queue at
    /// capacity is rejected, never blocked.
    std::size_t queue_capacity = 64;
    /// Service worker threads (each drives one request — or one read batch —
    /// at a time through the pipeline). 0 picks min(4, max(2, pool width)).
    std::size_t workers = 0;
    /// Read batching: a popped read may carry along up to batch_limit - 1
    /// queued reads whose ranges fall inside its stripe span, served by one
    /// shared read_range. 1 disables coalescing.
    std::size_t batch_limit = 8;
    /// Coalesce only when at least this many reads are queued after the pop
    /// — batching is a backlog response, not a happy-path detour.
    std::size_t batch_min_backlog = 2;
    /// Run a background Scrubber over the store while serving (its `hold`
    /// gate is wired to this node's foreground pressure unless the caller
    /// supplies one).
    bool scrub = false;
    ScrubOptions scrub_options;
    /// IO options for the read/write path. `io.engine` (borrowed) is shared
    /// by every worker pipeline, the write path, and the scrubber — the
    /// fault-injection seam; nullptr lets the node create one. fixed_buffers
    /// is forced off internally: the registered-buffer set belongs to a
    /// single foreground pipeline, and a node runs one pipeline per worker.
    IoPipeline::Options io;
  };

  struct TenantStats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    /// Requests that rode another request's stripe submission.
    std::uint64_t batched = 0;
    std::size_t queue_depth = 0;  // queued right now
  };

  struct Stats {
    std::vector<TenantStats> tenants;
    std::uint64_t reads = 0, writes = 0, scans = 0;
    std::uint64_t degraded_reads = 0;   // read/scan requests with >= 1 degraded stripe
    std::uint64_t failed_requests = 0;  // completed with ok == false
    std::uint64_t batched_reads = 0;    // total riders across all tenants
    std::size_t queue_depth = 0;        // queued right now, all tenants
    std::size_t in_service = 0;         // popped, not yet completed
    /// Aggregate of background scrub passes (zero-valued when scrub is off).
    ScrubReport scrub;
    /// The node's IO engine counters (transfers, fixed/direct fallbacks,
    /// ring high-water marks) — the per-node surface a cluster harness
    /// aggregates, and what the direct-IO CI leg gates on
    /// (direct_fallbacks == 0 proves O_DIRECT actually engaged).
    io::Engine::Stats io;
    /// End-to-end (admission -> completion) latency per request class.
    LatencyHistogram read_latency, write_latency, scan_latency;
  };

  /// Completion handle. Cheap to copy; default-constructed handles are
  /// invalid. The Response reference stays valid while any Future copy lives.
  class Future {
   public:
    Future() = default;
    bool valid() const { return state_ != nullptr; }
    bool done() const;
    /// Blocks until the request completes; immediate for rejected submits.
    const Response& wait() const;

   private:
    friend class StorageNode;
    explicit Future(std::shared_ptr<detail::RequestState> state)
        : state_(std::move(state)) {}
    std::shared_ptr<detail::RequestState> state_;
  };

  /// Node over an existing StripeStore in `store_dir`, served through
  /// `codec` (borrowed; its config must match the store's). start() loads
  /// the manifest and spawns the service.
  StorageNode(Codec& codec, std::string store_dir);
  StorageNode(Codec& codec, std::string store_dir, Options options);
  /// Destruction stops the node (drain + shutdown) if still running.
  ~StorageNode();

  StorageNode(const StorageNode&) = delete;
  StorageNode& operator=(const StorageNode&) = delete;

  /// Loads the manifest, opens long-lived device fds, spawns workers (and
  /// the background scrubber when configured). Throws on a missing/garbled
  /// manifest or a codec/store config mismatch.
  void start();

  /// Admission: bounds-checks the request, charges the tenant's queue, and
  /// returns a Future. A full queue or a draining node yields an
  /// immediately-completed Future with rejected == true — submit never
  /// blocks on service progress. Throws only on malformed requests
  /// (tenant out of range, write with no started node).
  Future submit(Request request);

  /// Stops admitting (rejects from now on), serves everything already
  /// queued, stops the background scrubber, and re-saves the manifest.
  /// Idempotent; blocks until quiescent.
  void drain();

  /// drain(), then joins the workers and closes the store. The node cannot
  /// be restarted — construct a new one on the same directory.
  void stop();

  Stats stats() const;

  bool started() const { return started_; }
  Codec& codec() { return codec_; }
  io::Engine& engine() { return *engine_; }
  const std::string& store_dir() const { return store_dir_; }
  /// The in-memory manifest. Stable geometry; sector checksums mutate under
  /// write traffic, so read them only on a quiescent (drained) node.
  const StripeStore& store() const { return store_; }
  std::size_t stripe_data_bytes() const { return stripe_data_; }

 private:
  struct Queues;      // per-tenant class deques (service.cpp)
  struct WriteSlot;   // per-worker write scratch (service.cpp)

  using StatePtr = std::shared_ptr<detail::RequestState>;

  void worker_loop(std::size_t worker);
  /// Blocks for the next unit of work: the highest-priority, round-robin
  /// tenant pick, plus any same-span read riders. Empty batch = shut down.
  std::vector<StatePtr> next_batch();
  void serve_reads(std::size_t worker, std::vector<StatePtr>& batch);
  void serve_write(std::size_t worker, const StatePtr& state);
  void complete(const StatePtr& state, Response response);
  /// This stripe's data fold from the manifest's sector checksums (caller
  /// holds manifest_mu_ once serving).
  std::uint64_t stripe_hash(std::size_t stripe) const;
  void flush_manifest();
  bool foreground_pressure() const;

  Codec& codec_;
  std::string store_dir_;
  Options options_;

  // IO plumbing (engine shared by pipelines, write path, scrubber).
  std::unique_ptr<io::Engine> owned_engine_;
  io::Engine* engine_ = nullptr;
  std::vector<std::unique_ptr<IoPipeline>> pipelines_;  // one per worker
  std::unique_ptr<IoBufferPool> write_staging_;
  std::vector<std::unique_ptr<WriteSlot>> write_slots_;  // one per worker
  std::vector<int> dev_fds_;

  // Store state (guarded by manifest_mu_ once serving).
  mutable std::mutex manifest_mu_;
  StripeStore store_;
  /// Per-stripe data-hash folds, kept current by the write path so the
  /// whole-file fold refreshes without re-reading content.
  std::vector<std::uint64_t> stripe_hashes_;
  bool manifest_dirty_ = false;
  std::size_t stripe_data_ = 0;
  /// (row, device) of each data symbol in data order — the manifest fold
  /// and write-path scatter both need it.
  std::vector<std::pair<std::size_t, std::size_t>> data_positions_;

  /// Per-stripe shared/exclusive occupancy: readers hold their stripe span,
  /// a writer holds its stripe, so a write cannot tear bytes out from under
  /// a concurrent read of the same stripe.
  class StripeRangeLock {
   public:
    void resize(std::size_t stripes);
    void lock_shared(std::size_t lo, std::size_t hi);
    void unlock_shared(std::size_t lo, std::size_t hi);
    void lock_exclusive(std::size_t stripe);
    void unlock_exclusive(std::size_t stripe);

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::vector<std::int32_t> state_;  // -1 writer, else reader count
  };
  StripeRangeLock range_lock_;

  // Scheduler (guarded by sched_mu_).
  mutable std::mutex sched_mu_;
  std::condition_variable sched_cv_;   // workers wait for work
  std::condition_variable drain_cv_;   // drain waits for quiescence
  std::unique_ptr<Queues> queues_;
  /// Mutated under sched_mu_; atomic so the scrubber's hold gate (and the
  /// drain predicate) can read foreground pressure without taking the
  /// scheduler lock from another thread.
  std::atomic<std::size_t> queued_total_{0};
  std::atomic<std::size_t> in_service_{0};
  std::array<std::size_t, kRequestClasses> rr_cursor_{};
  bool draining_ = false;
  bool stopping_ = false;

  // Metrics.
  struct TenantCounters {
    std::atomic<std::uint64_t> submitted{0}, completed{0}, rejected{0}, batched{0};
  };
  std::vector<std::unique_ptr<TenantCounters>> tenant_counters_;
  std::atomic<std::uint64_t> reads_{0}, writes_{0}, scans_{0};
  std::atomic<std::uint64_t> degraded_reads_{0}, failed_requests_{0}, batched_reads_{0};
  ConcurrentHistogram read_latency_, write_latency_, scan_latency_;

  // Background maintenance.
  std::unique_ptr<Scrubber> scrubber_;
  ScrubReport scrub_final_;  // aggregate captured at drain

  std::vector<std::thread> workers_;
  std::atomic<bool> started_{false};
  bool stopped_ = false;
};

/// `base` with the STAIR_NODE_* environment overrides applied:
/// STAIR_NODE_TENANTS, STAIR_NODE_QUEUE (per-tenant capacity),
/// STAIR_NODE_WORKERS, STAIR_NODE_BATCH (batch_limit), STAIR_NODE_SCRUB
/// (truthy). Malformed values throw — a typo'd knob must not silently serve
/// the wrong configuration.
StorageNode::Options node_options_from_env(StorageNode::Options base = {});

}  // namespace stair
