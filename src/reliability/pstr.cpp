#include "reliability/pstr.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace stair::reliability {

namespace {

double binom(std::size_t n, std::size_t k) {
  if (k > n) return 0.0;
  double result = 1.0;
  for (std::size_t i = 0; i < k; ++i)
    result *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  return result;
}

// Number of ways to assign the ascending count multiset `c` to `chunks`
// distinguishable chunks: chunks falling-factorial k divided by the
// multiplicities' factorials.
double multiset_ways(std::span<const std::size_t> c, std::size_t chunks) {
  const std::size_t k = c.size();
  if (k > chunks) return 0.0;
  double ways = 1.0;
  for (std::size_t i = 0; i < k; ++i) ways *= static_cast<double>(chunks - i);
  std::size_t run = 1;
  for (std::size_t i = 1; i <= k; ++i) {
    if (i < k && c[i] == c[i - 1]) {
      ++run;
    } else {
      for (std::size_t f = 2; f <= run; ++f) ways /= static_cast<double>(f);
      run = 1;
    }
  }
  return ways;
}

// Sums P(recoverable pattern) over all ascending count vectors accepted by
// `fits`, entries bounded by `max_entry`, length bounded by `max_len`.
double recoverable_probability(
    std::span<const double> pchk, std::size_t chunks, std::size_t max_entry,
    std::size_t max_len,
    const std::function<bool(std::span<const std::size_t>)>& fits) {
  const std::size_t r = pchk.size() - 1;
  max_entry = std::min(max_entry, r);
  max_len = std::min(max_len, chunks);

  double total = 0.0;
  std::vector<std::size_t> c;
  std::function<void(std::size_t, double)> rec = [&](std::size_t min_entry, double prob) {
    if (fits(c)) total += multiset_ways(c, chunks) * prob *
                          std::pow(pchk[0], static_cast<double>(chunks - c.size()));
    if (c.size() == max_len) return;
    for (std::size_t v = min_entry; v <= max_entry; ++v) {
      if (pchk[v] == 0.0) continue;
      c.push_back(v);
      rec(v, prob * pchk[v]);
      c.pop_back();
    }
  };
  rec(1, 1.0);
  return total;
}

}  // namespace

double pstr_rs(std::span<const double> pchk, std::size_t chunks) {
  return 1.0 - std::pow(pchk[0], static_cast<double>(chunks));
}

double pstr_stair(std::span<const double> pchk, std::size_t chunks,
                  std::span<const std::size_t> e) {
  if (e.empty()) return pstr_rs(pchk, chunks);
  const std::size_t mp = e.size();
  auto fits = [&](std::span<const std::size_t> c) {
    const std::size_t k = c.size();
    if (k > mp) return false;
    for (std::size_t i = 0; i < k; ++i)
      if (c[i] > e[mp - k + i]) return false;
    return true;
  };
  return 1.0 - recoverable_probability(pchk, chunks, e.back(), mp, fits);
}

double pstr_sd(std::span<const double> pchk, std::size_t chunks, std::size_t s) {
  auto fits = [&](std::span<const std::size_t> c) {
    std::size_t total = 0;
    for (std::size_t v : c) total += v;
    return total <= s;
  };
  return 1.0 - recoverable_probability(pchk, chunks, s, s, fits);
}

// --- Appendix B closed forms ------------------------------------------------

double pstr_stair_e_s(std::span<const double> pchk, std::size_t chunks, std::size_t s) {
  const double n1 = static_cast<double>(chunks);
  double sum = 0.0;
  for (std::size_t i = 1; i <= s; ++i) sum += pchk[i];
  return 1.0 - std::pow(pchk[0], n1) - n1 * sum * std::pow(pchk[0], n1 - 1);
}

double pstr_stair_e_1_s1(std::span<const double> pchk, std::size_t chunks, std::size_t s) {
  if (s < 2) throw std::invalid_argument("e = (1, s-1) needs s >= 2");
  const double nm = static_cast<double>(chunks);
  double single = 0.0;
  for (std::size_t i = 1; i <= s - 1; ++i) single += pchk[i];
  double paired = 0.0;
  for (std::size_t i = 2; i <= s - 1; ++i) paired += pchk[i];
  return 1.0 - std::pow(pchk[0], nm) - nm * single * std::pow(pchk[0], nm - 1) -
         binom(chunks, 2) * pchk[1] * pchk[1] * std::pow(pchk[0], nm - 2) -
         nm * (nm - 1) * paired * pchk[1] * std::pow(pchk[0], nm - 2);
}

double pstr_stair_e_2_s2(std::span<const double> pchk, std::size_t chunks, std::size_t s) {
  if (s < 4) throw std::invalid_argument("e = (2, s-2) needs s >= 4");
  const double nm = static_cast<double>(chunks);
  double single = 0.0;
  for (std::size_t i = 1; i <= s - 2; ++i) single += pchk[i];
  double with1 = 0.0;
  for (std::size_t i = 2; i <= s - 2; ++i) with1 += pchk[i];
  double with2 = 0.0;
  for (std::size_t i = 3; i <= s - 2; ++i) with2 += pchk[i];
  return 1.0 - std::pow(pchk[0], nm) - nm * single * std::pow(pchk[0], nm - 1) -
         binom(chunks, 2) * pchk[1] * pchk[1] * std::pow(pchk[0], nm - 2) -
         nm * (nm - 1) * with1 * pchk[1] * std::pow(pchk[0], nm - 2) -
         binom(chunks, 2) * pchk[2] * pchk[2] * std::pow(pchk[0], nm - 2) -
         nm * (nm - 1) * with2 * pchk[2] * std::pow(pchk[0], nm - 2);
}

double pstr_stair_e_11_s2(std::span<const double> pchk, std::size_t chunks, std::size_t s) {
  if (s < 3) throw std::invalid_argument("e = (1, 1, s-2) needs s >= 3");
  const double nm = static_cast<double>(chunks);
  double single = 0.0;
  for (std::size_t i = 1; i <= s - 2; ++i) single += pchk[i];
  double with1 = 0.0;
  for (std::size_t i = 2; i <= s - 2; ++i) with1 += pchk[i];
  return 1.0 - std::pow(pchk[0], nm) - nm * single * std::pow(pchk[0], nm - 1) -
         binom(chunks, 2) * pchk[1] * pchk[1] * std::pow(pchk[0], nm - 2) -
         nm * (nm - 1) * with1 * pchk[1] * std::pow(pchk[0], nm - 2) -
         binom(chunks, 3) * std::pow(pchk[1], 3.0) * std::pow(pchk[0], nm - 3) -
         binom(chunks, 2) * (nm - 2) * with1 * pchk[1] * pchk[1] * std::pow(pchk[0], nm - 3);
}

double pstr_stair_e_ones(std::span<const double> pchk, std::size_t chunks, std::size_t s) {
  double recoverable = 0.0;
  for (std::size_t i = 0; i <= std::min(s, chunks); ++i)
    recoverable += binom(chunks, i) * std::pow(pchk[1], static_cast<double>(i)) *
                   std::pow(pchk[0], static_cast<double>(chunks - i));
  return 1.0 - recoverable;
}

double pstr_sd_closed(std::span<const double> pchk, std::size_t chunks, std::size_t s) {
  const double nm = static_cast<double>(chunks);
  const double p0 = pchk[0];
  double sum = 0.0;
  for (std::size_t i = 1; i <= s; ++i) sum += pchk[i];
  switch (s) {
    case 1:
      return 1.0 - std::pow(p0, nm) - nm * pchk[1] * std::pow(p0, nm - 1);
    case 2:
      return 1.0 - std::pow(p0, nm) - nm * sum * std::pow(p0, nm - 1) -
             binom(chunks, 2) * pchk[1] * pchk[1] * std::pow(p0, nm - 2);
    case 3:
      return 1.0 - std::pow(p0, nm) - nm * sum * std::pow(p0, nm - 1) -
             binom(chunks, 2) * pchk[1] * pchk[1] * std::pow(p0, nm - 2) -
             nm * (nm - 1) * pchk[2] * pchk[1] * std::pow(p0, nm - 2) -
             binom(chunks, 3) * std::pow(pchk[1], 3.0) * std::pow(p0, nm - 3);
    default:
      throw std::invalid_argument("pstr_sd_closed: closed forms exist for s <= 3 only");
  }
}

}  // namespace stair::reliability
