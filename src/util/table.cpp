#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace stair {

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::vector<std::string>> all;
  if (!header_.empty()) all.push_back(header_);
  all.insert(all.end(), rows_.begin(), rows_.end());
  if (all.empty()) return;

  std::size_t cols = 0;
  for (const auto& row : all) cols = std::max(cols, row.size());
  std::vector<std::size_t> width(cols, 0);
  for (const auto& row : all)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  if (!title_.empty()) os << "## " << title_ << "\n";
  bool first = true;
  for (const auto& row : all) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << cell << std::string(width[c] - cell.size() + 2, ' ');
    }
    os << "\n";
    if (first && !header_.empty()) {
      for (std::size_t c = 0; c < cols; ++c) os << std::string(width[c], '-') << "  ";
      os << "\n";
      first = false;
    }
  }
  os << "\n";
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string format_sig(double value, int digits) {
  if (value == 0.0) return "0";
  if (!std::isfinite(value)) return value > 0 ? "inf" : (value < 0 ? "-inf" : "nan");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, value);
  return buf;
}

}  // namespace stair
