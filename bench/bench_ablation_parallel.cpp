// Ablation A5 (§6.2.1): "encoding operations can also be parallelized with
// modern multi-core CPUs". Thread-scaling sweep of encode throughput, 1..N
// threads, comparing two mechanisms on the same compiled schedule:
//
//   spawn — the seed's approach: std::threads created and joined on every
//           call, each replaying a per-call sliced copy of the stripe view;
//   pool  — the persistent ThreadPool engine: workers parked once, claiming
//           cache-aware byte slices of the shared symbol table.
//
// Expected: pool >= spawn at every thread count (the gap is the per-call
// spawn overhead), near-linear scaling up to the physical core count. On a
// single-vCPU machine both curves are flat — the mechanism is what's tested
// here; the speedup depends on the host.
//
// Every measured cell is appended to BENCH_parallel_scaling.json for the
// perf trajectory the CI tracks. STAIR_BENCH_SMOKE=1 (or --smoke) shrinks
// the stripe — the CI smoke configuration.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "gf/kernel.h"

using namespace stair;
using namespace stair::bench;

namespace {

bool g_smoke = false;
// 128 MB stripes full-size; 32 MB in smoke so CI still sees memory-bound
// scaling without the runtime.
std::size_t symbol_bytes() { return g_smoke ? (128u * 1024) : (512u * 1024); }

struct Cell {
  std::size_t threads;
  std::string mode;  // "spawn" | "pool"
  double mbps;
  double speedup;  // vs the same mode at 1 thread
};
std::vector<Cell> g_cells;

StripeView slice_view(const StripeView& v, std::size_t offset, std::size_t len) {
  StripeView s;
  s.symbol_size = len;
  s.stored.reserve(v.stored.size());
  for (const auto& r : v.stored) s.stored.push_back(r.subspan(offset, len));
  for (const auto& r : v.outside_globals)
    s.outside_globals.push_back(r.subspan(offset, len));
  return s;
}

// The seed's per-call mechanism: spawn `threads` std::threads, each slicing
// the stripe view from scratch and replaying its slice (per-thread Workspace
// so scratch at least is warm — generous to the baseline).
void encode_spawning(const StairCode& code, const CompiledSchedule& plan,
                     const StripeView& stripe, std::size_t threads,
                     std::vector<Workspace>& ws) {
  const std::size_t size = stripe.symbol_size;
  std::size_t chunk = (size + threads - 1) / threads;
  chunk = (chunk + 63) / 64 * 64;
  std::vector<std::thread> workers;
  std::size_t t = 0;
  for (std::size_t offset = 0; offset < size; offset += chunk, ++t) {
    const std::size_t len = std::min(chunk, size - offset);
    workers.emplace_back([&, offset, len, t] {
      const StripeView sliced = slice_view(stripe, offset, len);
      code.execute(plan, sliced, &ws[t]);
    });
  }
  for (auto& th : workers) th.join();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = parse_env(argc, argv);
  g_smoke = env.smoke;

  const StairConfig cfg{.n = 16, .r = 16, .m = 2, .e = {1, 1, 2}};
  const StairCode code(cfg);
  const std::size_t symbol = symbol_bytes();
  const std::size_t stripe_bytes = symbol * cfg.n * cfg.r;
  const std::size_t hw = env.hardware_threads;

  std::cout << "=== Ablation: multi-threaded encoding (§6.2.1), spawn vs pool ===\n"
            << cfg.to_string() << ", " << (stripe_bytes >> 20) << " MB stripes, " << hw
            << " hardware threads, pool concurrency " << env.pool_width()
            << (g_smoke ? "  [smoke]" : "") << "\n\n";

  StripeBuffer stripe = make_encoded_stripe(code, symbol);
  const EncodingMethod method = code.select_method();
  const CompiledSchedule& plan = code.compiled_encoding_schedule(method);

  // 1..N sweep: every count to 4, then powers of two, then the hardware
  // width — the shape (knee at physical cores) needs the low counts.
  const std::vector<std::size_t> counts = thread_sweep(hw);

  TablePrinter table("encode throughput (MB/s), spawn-per-call vs persistent pool");
  table.set_header({"threads", "spawn MB/s", "spawn x", "pool MB/s", "pool x", "pool/spawn"});
  double spawn_base = 0.0, pool_base = 0.0;
  std::vector<Workspace> spawn_ws(std::max<std::size_t>(64, counts.back() + 1));
  Workspace pool_ws;
  for (std::size_t threads : counts) {
    const double spawn = measure_mbps(
        [&] { encode_spawning(code, plan, stripe.view(), threads, spawn_ws); }, stripe_bytes);
    const double pool = measure_mbps(
        [&] { code.encode_parallel(stripe.view(), threads, method, &pool_ws); }, stripe_bytes);
    if (threads == 1) {
      spawn_base = spawn;
      pool_base = pool;
    }
    g_cells.push_back({threads, "spawn", spawn, spawn / spawn_base});
    g_cells.push_back({threads, "pool", pool, pool / pool_base});
    table.add_row({std::to_string(threads), format_sig(spawn, 4),
                   format_sig(spawn / spawn_base, 3) + "x", format_sig(pool, 4),
                   format_sig(pool / pool_base, 3) + "x", format_sig(pool / spawn, 3)});
  }
  table.print(std::cout);

  {
    const std::string path = json_output_path("BENCH_parallel_scaling.json", g_smoke);
    std::ofstream out(path);
    out << "{\n  \"bench\": \"ablation_parallel_scaling\",\n"
        << "  \"backend\": \"" << gf::backend_name(gf::active_backend()) << "\",\n"
        << "  \"smoke\": " << (g_smoke ? "true" : "false") << ",\n"
        << "  \"hardware_threads\": " << hw << ",\n"
        << "  \"pool_concurrency\": " << env.pool_width() << ",\n"
        << "  \"stripe_bytes\": " << stripe_bytes << ",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < g_cells.size(); ++i) {
      const Cell& c = g_cells[i];
      out << "    {\"threads\": " << c.threads << ", \"mode\": \"" << c.mode
          << "\", \"mbps\": " << c.mbps << ", \"speedup\": " << c.speedup << "}"
          << (i + 1 < g_cells.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "\nWrote " << g_cells.size() << " cells to " << path << "\n";
  }

  std::cout << "Shape check: pool >= spawn at every thread count; MB/s monotone\n"
               "non-decreasing with threads, approaching linear speedup up to the\n"
               "machine's physical core count (flat on a single-vCPU host).\n";
  return 0;
}
