#include "gf/bitmatrix.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "gf/region.h"

namespace stair::gf {

std::vector<std::uint32_t> multiplication_bitmatrix(const Field& f, std::uint32_t a) {
  const int w = f.w();
  std::vector<std::uint32_t> rows(w, 0);
  for (int j = 0; j < w; ++j) {
    const std::uint32_t col = f.mul(a, std::uint32_t{1} << j);
    for (int i = 0; i < w; ++i)
      if (col & (std::uint32_t{1} << i)) rows[i] |= std::uint32_t{1} << j;
  }
  return rows;
}

std::size_t bitmatrix_xor_count(std::span<const std::uint32_t> rows) {
  std::size_t count = 0;
  for (std::uint32_t row : rows) count += std::popcount(row);
  return count;
}

void bitmatrix_mult_xor_region(std::span<const std::uint32_t> rows, int w,
                               std::span<const std::uint8_t> src,
                               std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  assert(src.size() % w == 0 && "region must split into w packets");
  const std::size_t packet = src.size() / w;
  for (int i = 0; i < w; ++i) {
    auto out = dst.subspan(i * packet, packet);
    for (int j = 0; j < w; ++j)
      if (rows[i] & (std::uint32_t{1} << j))
        xor_region(src.subspan(j * packet, packet), out);
  }
}

void bitmatrix_mult_region(std::span<const std::uint32_t> rows, int w,
                           std::span<const std::uint8_t> src,
                           std::span<std::uint8_t> dst) {
  assert(src.size() == dst.size());
  assert(src.size() % w == 0 && "region must split into w packets");
  const std::size_t packet = dst.size() / w;
  if (packet == 0) return;
  for (int i = 0; i < w; ++i) {
    auto out = dst.subspan(i * packet, packet);
    bool first = true;
    for (int j = 0; j < w; ++j) {
      if (!(rows[i] & (std::uint32_t{1} << j))) continue;
      auto in = src.subspan(j * packet, packet);
      if (first) {
        std::copy(in.begin(), in.end(), out.begin());
        first = false;
      } else {
        xor_region(in, out);
      }
    }
    if (first) std::memset(out.data(), 0, packet);  // empty row
  }
}

namespace {

// Generic (slow) layout converters; correctness-critical, not hot.
void convert(const Field& f, std::span<const std::uint8_t> in,
             std::span<std::uint8_t> out, bool to_planes) {
  const int w = f.w();
  assert(in.size() == out.size());
  assert(in.size() % w == 0);
  const std::size_t packet = in.size() / w;           // bytes per bit-plane
  const std::size_t elements = in.size() * 8 / w;     // w-bit symbols
  const std::size_t bytes = static_cast<std::size_t>(w) / 8;  // w >= 8
  assert(w >= 8 && "bit-plane layout defined for w in {8, 16, 32}");

  std::memset(out.data(), 0, out.size());
  for (std::size_t k = 0; k < elements; ++k) {
    std::uint32_t value = 0;
    if (to_planes) {
      std::memcpy(&value, in.data() + k * bytes, bytes);
    } else {
      for (int i = 0; i < w; ++i) {
        const std::size_t bit = i * packet * 8 + k;
        if (in[bit / 8] & (1u << (bit % 8))) value |= std::uint32_t{1} << i;
      }
    }
    if (to_planes) {
      for (int i = 0; i < w; ++i) {
        if (!(value & (std::uint32_t{1} << i))) continue;
        const std::size_t bit = i * packet * 8 + k;
        out[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
      }
    } else {
      std::memcpy(out.data() + k * bytes, &value, bytes);
    }
  }
}

}  // namespace

void to_bitplane(const Field& f, std::span<const std::uint8_t> in,
                 std::span<std::uint8_t> out) {
  convert(f, in, out, /*to_planes=*/true);
}

void from_bitplane(const Field& f, std::span<const std::uint8_t> in,
                   std::span<std::uint8_t> out) {
  convert(f, in, out, /*to_planes=*/false);
}

}  // namespace stair::gf
