// Dense matrices over GF(2^w) and the linear algebra the code constructions
// need: multiplication, Gaussian inversion, rank, and solving.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "gf/gf.h"

namespace stair {

/// Row-major dense matrix over a shared GF(2^w) field.
///
/// Elements are stored as uint32_t regardless of w so the same code serves
/// all word sizes; construction code is not throughput-critical.
class Matrix {
 public:
  /// rows x cols zero matrix over `f`.
  Matrix(const gf::Field& f, std::size_t rows, std::size_t cols);

  /// Identity matrix of size n.
  static Matrix identity(const gf::Field& f, std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const gf::Field& field() const { return *field_; }

  std::uint32_t at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  void set(std::size_t r, std::size_t c, std::uint32_t v) { data_[r * cols_ + c] = v; }

  /// Row r as a contiguous span.
  std::span<const std::uint32_t> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<std::uint32_t> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }

  /// Matrix product this * rhs (cols() must equal rhs.rows()).
  Matrix mul(const Matrix& rhs) const;

  /// Matrix-vector product this * v.
  std::vector<std::uint32_t> mul_vec(std::span<const std::uint32_t> v) const;

  /// Inverse by Gauss-Jordan elimination; nullopt if singular. Square only.
  std::optional<Matrix> inverse() const;

  /// Rank by Gaussian elimination.
  std::size_t rank() const;

  /// True iff square and inverse() exists.
  bool is_invertible() const;

  /// Submatrix picking the given rows and columns (in the given order).
  Matrix select(std::span<const std::size_t> row_idx,
                std::span<const std::size_t> col_idx) const;

  /// Horizontal concatenation [this | rhs] (equal row counts).
  Matrix concat_cols(const Matrix& rhs) const;

  bool operator==(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

 private:
  const gf::Field* field_;
  std::size_t rows_, cols_;
  std::vector<std::uint32_t> data_;
};

/// Solves A x = b over GF (A square, invertible); nullopt if singular.
std::optional<std::vector<std::uint32_t>> solve(const Matrix& a,
                                                std::span<const std::uint32_t> b);

/// Process-lifetime count of Matrix::inverse() runs. Plan construction is
/// the only decode step that inverts matrices, so tests snapshot this to
/// prove a cached-plan decode performs zero inversions.
std::uint64_t matrix_inversion_count();

}  // namespace stair
