// Leasable object pool — reusable per-job scratch for the Codec pipeline.
//
// A stripe-batch session keeps N coding jobs in flight, and every job needs
// scratch whose allocation cost (megabytes of zeroed, aligned memory) must
// not be paid per stripe: exactly the amortization the kernel-table and
// decode-plan caches already apply to table and plan construction, applied
// here to scratch buffers. WorkspacePool<T> hands out leases backed by a
// free-list of default-constructed T slots: a released slot is reissued to
// the next acquire with its contents intact, so a Workspace that has already
// sized itself for the session's stripe geometry is reused warm. The pool
// only grows to the high-water mark of concurrently leased objects — a
// session running B stripes in flight settles at B slots, regardless of how
// many million stripes pass through it.
//
// Leases are shared_ptr<T> whose deleter returns the slot, so a lease can be
// handed to the last finishing subtask of a job and released from any
// thread; the backing store is kept alive by the leases themselves, making
// pool destruction safe even with leases still outstanding.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace stair {

namespace detail {

/// The type-erased synchronization core behind WorkspacePool<T>: a
/// mutex-guarded free-list of slot indices plus lifetime statistics. Kept
/// out of the template so the locking logic is compiled (and tested) once.
class PoolCore {
 public:
  /// Sentinel returned by acquire_locked() when no freed slot is available
  /// and the caller must append a fresh one (then call register_locked()).
  static constexpr std::size_t kGrow = static_cast<std::size_t>(-1);

  /// The lock acquire-side callers must hold across acquire_locked() /
  /// register_locked() and their own slot-storage access, so slot addresses
  /// are never read concurrently with another thread growing the storage.
  std::unique_lock<std::mutex> lock() const { return std::unique_lock<std::mutex>(mu_); }

  /// Pops the most recently released slot (warmest scratch first), or kGrow.
  std::size_t acquire_locked();
  /// Records a freshly appended slot; returns its index.
  std::size_t register_locked();
  /// Returns `slot` to the free-list. Takes the lock itself (release is
  /// called from lease deleters on arbitrary threads).
  void release(std::size_t slot);

  /// Slots ever created == the high-water mark of concurrent leases.
  std::size_t created() const;
  /// Leases handed out, and how many of those reused a released slot.
  std::uint64_t acquired() const { return acquired_.load(std::memory_order_relaxed); }
  std::uint64_t reused() const { return reused_.load(std::memory_order_relaxed); }
  /// Leases currently outstanding.
  std::size_t in_use() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::size_t> free_;  // guarded by mu_
  std::size_t created_ = 0;        // guarded by mu_
  std::atomic<std::uint64_t> acquired_{0}, reused_{0};
};

}  // namespace detail

/// Thread-safe pool of reusable default-constructed T objects. acquire()
/// returns a lease; destroying (or resetting) the last copy of the lease
/// returns the object — contents untouched — for the next acquire.
template <typename T>
class WorkspacePool {
 public:
  using Lease = std::shared_ptr<T>;

  WorkspacePool() : state_(std::make_shared<State>()) {}

  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Leases a slot, preferring the most recently released one. Never blocks
  /// on pool exhaustion: a fresh slot is created when no freed one exists.
  Lease acquire() {
    std::shared_ptr<State> state = state_;
    T* object = nullptr;
    std::size_t slot;
    {
      auto lock = state->core.lock();
      slot = state->core.acquire_locked();
      if (slot == detail::PoolCore::kGrow) {
        state->slots.push_back(std::make_unique<T>());
        slot = state->core.register_locked();
      }
      object = state->slots[slot].get();
    }
    // The deleter owns a reference to the whole backing store, so leases
    // outliving the pool object itself stay valid and still release cleanly.
    return Lease(object, [state, slot](T*) { state->core.release(slot); });
  }

  std::size_t created() const { return state_->core.created(); }
  std::uint64_t acquired() const { return state_->core.acquired(); }
  std::uint64_t reused() const { return state_->core.reused(); }
  std::size_t in_use() const { return state_->core.in_use(); }

 private:
  struct State {
    detail::PoolCore core;
    // unique_ptr targets keep object addresses stable while the vector grows
    // under the core lock.
    std::vector<std::unique_ptr<T>> slots;
  };

  std::shared_ptr<State> state_;
};

/// One fixed-size buffer leased from an IoBufferPool. `index` is the
/// buffer's position in the pool's registrable set — the value to pass as
/// buf_index to io::Engine::read_fixed/write_fixed — or -1 for overflow
/// buffers allocated past the registered capacity (still aligned, so
/// O_DIRECT transfers keep working; they just take the unregistered path).
struct IoBuffer {
  std::uint8_t* data = nullptr;
  std::size_t bytes = 0;
  int index = -1;

  std::span<std::uint8_t> span() { return {data, bytes}; }
  std::span<std::uint8_t> span(std::size_t n) { return {data, n}; }
};

/// WorkspacePool specialized for raw-device IO staging: every buffer is
/// allocated at a caller-chosen alignment (the device's logical block size,
/// so O_DIRECT accepts it) and the first `registered_capacity` buffers form
/// a stable set the IO engine can pin once via register_buffers(regions()).
/// acquire() never blocks: past the registered capacity it hands out aligned
/// overflow buffers with index -1 (counted in overflow_allocs()), which
/// degrade to unregistered transfers — backpressure stays the pipeline's
/// job, registration stays an optimization.
class IoBufferPool {
 public:
  using Lease = std::shared_ptr<IoBuffer>;

  /// Buffers are `buffer_bytes` rounded up to `alignment`; the registrable
  /// set is allocated eagerly so regions() is stable from construction.
  IoBufferPool(std::size_t buffer_bytes, std::size_t alignment,
                    std::size_t registered_capacity);

  /// Leases a buffer (warmest first). Contents are NOT cleared between
  /// leases, like WorkspacePool.
  Lease acquire();

  /// The registrable set, in index order — the argument for
  /// io::Engine::register_buffers. Stable for the pool's lifetime.
  std::vector<std::span<std::uint8_t>> regions() const;

  std::size_t buffer_bytes() const { return bytes_; }
  std::size_t alignment() const { return alignment_; }
  std::size_t registered_capacity() const { return capacity_; }
  /// Acquires that outran the registered set and allocated an index -1 slot.
  std::uint64_t overflow_allocs() const {
    return overflow_.load(std::memory_order_relaxed);
  }

  std::size_t created() const { return state_->core.created(); }
  std::uint64_t acquired() const { return state_->core.acquired(); }
  std::uint64_t reused() const { return state_->core.reused(); }
  std::size_t in_use() const { return state_->core.in_use(); }

 private:
  struct State {
    detail::PoolCore core;
    // unique_ptr targets keep IoBuffer addresses stable while the
    // vector grows under the core lock; `data` allocations are owned here
    // and freed when the last lease releases the State.
    std::vector<std::unique_ptr<IoBuffer>> slots;
    ~State();
  };

  std::unique_ptr<IoBuffer> make_slot(int index) const;

  std::size_t alignment_ = 1;
  std::size_t bytes_ = 0;
  std::size_t capacity_ = 0;
  std::atomic<std::uint64_t> overflow_{0};
  std::shared_ptr<State> state_;
};

}  // namespace stair
