#include "matrix/vandermonde.h"

#include <cassert>
#include <stdexcept>

namespace stair {

Matrix vandermonde_matrix(const gf::Field& f, std::size_t rows, std::size_t cols) {
  if (rows > f.order())
    throw std::invalid_argument("vandermonde_matrix: too many rows for field");
  Matrix m(f, rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      m.set(i, j, f.pow(static_cast<std::uint32_t>(i), j));
  return m;
}

Matrix systematic_vandermonde_generator(const gf::Field& f, std::size_t kappa,
                                        std::size_t eta) {
  if (kappa >= eta) throw std::invalid_argument("generator: kappa must be < eta");
  if (eta > f.order())
    throw std::invalid_argument("generator: eta exceeds field size");

  // Work on the eta x kappa encoding matrix (codeword = V * data_col) and
  // reduce its top kappa x kappa block to the identity by column operations.
  // Column ops preserve "every kappa rows are independent", i.e. MDS.
  Matrix v = vandermonde_matrix(f, eta, kappa);

  for (std::size_t d = 0; d < kappa; ++d) {
    // Ensure a nonzero diagonal element by swapping columns if needed.
    if (v.at(d, d) == 0) {
      std::size_t swap_col = d + 1;
      while (swap_col < kappa && v.at(d, swap_col) == 0) ++swap_col;
      assert(swap_col < kappa && "Vandermonde block must be nonsingular");
      for (std::size_t r = 0; r < eta; ++r) {
        const std::uint32_t tmp = v.at(r, d);
        v.set(r, d, v.at(r, swap_col));
        v.set(r, swap_col, tmp);
      }
    }
    // Scale column d so the diagonal becomes 1.
    const std::uint32_t pinv = f.inv(v.at(d, d));
    if (pinv != 1)
      for (std::size_t r = 0; r < eta; ++r) v.set(r, d, f.mul(v.at(r, d), pinv));
    // Clear the rest of row d by column elimination.
    for (std::size_t c = 0; c < kappa; ++c) {
      if (c == d) continue;
      const std::uint32_t factor = v.at(d, c);
      if (factor == 0) continue;
      for (std::size_t r = 0; r < eta; ++r)
        v.set(r, c, gf::Field::add(v.at(r, c), f.mul(factor, v.at(r, d))));
    }
  }

  // v is now [I_kappa on top; A below] as an eta x kappa encoding matrix.
  // Transpose to the kappa x eta generator convention.
  Matrix g(f, kappa, eta);
  for (std::size_t i = 0; i < kappa; ++i)
    for (std::size_t j = 0; j < eta; ++j) g.set(i, j, v.at(j, i));
  return g;
}

}  // namespace stair
