// IDR scheme tests: inner/outer encode-decode round trips, coverage limits,
// and the space-overhead comparison against STAIR that motivates §2.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "idr/idr_scheme.h"
#include "stair/stair_config.h"
#include "util/buffer.h"
#include "util/rng.h"

namespace stair {
namespace {

class IdrFixture {
 public:
  explicit IdrFixture(IdrConfig cfg, std::size_t symbol = 8)
      : scheme_(cfg), symbol_(symbol) {
    const std::size_t total = cfg.n * cfg.r;
    for (std::size_t z = 0; z < total; ++z) bufs_.emplace_back(symbol_);
    for (auto& b : bufs_) regions_.push_back(b.span());
    Rng rng(31);
    // Data region: first r - eps rows of the n - m data chunks.
    for (std::size_t i = 0; i < cfg.r - cfg.eps; ++i)
      for (std::size_t j = 0; j < cfg.n - cfg.m; ++j) rng.fill(regions_[i * cfg.n + j]);
    scheme_.encode(regions_);
    golden_ = snapshot();
  }

  const IdrScheme& scheme() const { return scheme_; }

  std::vector<std::uint8_t> snapshot() const {
    std::vector<std::uint8_t> out;
    for (const auto& b : bufs_) out.insert(out.end(), b.span().begin(), b.span().end());
    return out;
  }

  bool corrupt_and_recover(const std::vector<bool>& mask) {
    restore();
    Rng garbage(55);
    for (std::size_t z = 0; z < mask.size(); ++z)
      if (mask[z]) garbage.fill(regions_[z]);
    if (!scheme_.decode(regions_, mask)) {
      restore();
      return false;
    }
    const bool ok = snapshot() == golden_;
    restore();
    return ok;
  }

  void restore() {
    std::size_t off = 0;
    for (auto& b : bufs_) {
      std::memcpy(b.data(), golden_.data() + off, symbol_);
      off += symbol_;
    }
  }

 private:
  IdrScheme scheme_;
  std::size_t symbol_;
  std::vector<AlignedBuffer> bufs_;
  std::vector<std::span<std::uint8_t>> regions_;
  std::vector<std::uint8_t> golden_;
};

TEST(IdrConfigTest, Validation) {
  EXPECT_THROW((IdrConfig{.n = 8, .r = 4, .m = 2, .eps = 0}).validate(), std::invalid_argument);
  EXPECT_THROW((IdrConfig{.n = 8, .r = 4, .m = 2, .eps = 4}).validate(), std::invalid_argument);
  EXPECT_THROW((IdrConfig{.n = 8, .r = 4, .m = 8, .eps = 1}).validate(), std::invalid_argument);
  EXPECT_NO_THROW((IdrConfig{.n = 8, .r = 4, .m = 2, .eps = 1}).validate());
}

TEST(IdrSchemeTest, DeviceFailuresRecover) {
  IdrFixture fx({.n = 6, .r = 4, .m = 2, .eps = 1});
  std::vector<bool> mask(24, false);
  for (std::size_t i = 0; i < 4; ++i) {
    mask[i * 6 + 1] = true;
    mask[i * 6 + 5] = true;  // one data device, one parity device
  }
  EXPECT_TRUE(fx.scheme().is_recoverable(mask));
  EXPECT_TRUE(fx.corrupt_and_recover(mask));
}

TEST(IdrSchemeTest, PerChunkBurstsUpToEpsRecover) {
  IdrFixture fx({.n = 6, .r = 6, .m = 1, .eps = 2});
  // Every data chunk loses a burst of eps sectors (IDR's design point).
  std::vector<bool> mask(36, false);
  for (std::size_t j = 0; j < 5; ++j)
    for (std::size_t q = 0; q < 2; ++q) mask[((j + q) % 6) * 6 + j] = true;
  EXPECT_TRUE(fx.scheme().is_recoverable(mask));
  EXPECT_TRUE(fx.corrupt_and_recover(mask));
}

TEST(IdrSchemeTest, DeviceFailurePlusSectorFailuresRecover) {
  IdrFixture fx({.n = 6, .r = 6, .m = 1, .eps = 2});
  std::vector<bool> mask(36, false);
  for (std::size_t i = 0; i < 6; ++i) mask[i * 6 + 0] = true;  // dead device
  mask[2 * 6 + 1] = true;                                      // sector in another
  mask[4 * 6 + 3] = true;
  EXPECT_TRUE(fx.corrupt_and_recover(mask));
}

TEST(IdrSchemeTest, BeyondEpsRejected) {
  IdrFixture fx({.n = 6, .r = 6, .m = 1, .eps = 2});
  // Two chunks exceed eps: only one can be deferred to the outer code.
  std::vector<bool> mask(36, false);
  for (std::size_t q = 0; q < 3; ++q) {
    mask[q * 6 + 1] = true;
    mask[q * 6 + 2] = true;
  }
  EXPECT_FALSE(fx.scheme().is_recoverable(mask));
  EXPECT_FALSE(fx.corrupt_and_recover(mask));
}

TEST(IdrSchemeTest, SpaceOverheadExceedsStairForBurstCoverage) {
  // §2's motivating example: beta = 4, n = 8, m = 2. IDR needs 24 redundant
  // sectors (plus the parity disks); STAIR with e = (1, 4) needs 5.
  const IdrConfig idr{.n = 8, .r = 16, .m = 2, .eps = 4};
  const StairConfig st{.n = 8, .r = 16, .m = 2, .e = {1, 4}};
  const std::size_t idr_extra = idr.redundancy() - idr.m * idr.r;  // inner sectors
  EXPECT_EQ(idr_extra, 24u);
  EXPECT_EQ(st.s(), 5u);
  EXPECT_LT(st.s(), idr_extra);
}

}  // namespace
}  // namespace stair
