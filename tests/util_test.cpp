// Utility tests: RNG determinism and distribution sanity, aligned buffers,
// the IO buffer pool's registered/overflow lease discipline, the log-bucketed
// latency histogram (bucket math, exact small-set percentiles, bounded
// relative error, merge/concurrent-shard equivalence), and the table printer
// the benchmark binaries rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "util/buffer.h"
#include "util/latency.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/workspace_pool.h"

namespace stair {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(8);
  int counts[10] = {};
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) EXPECT_NEAR(c, trials / 10, trials / 50);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasConfiguredMean) {
  Rng rng(10);
  double sum = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += rng.next_exponential(42.0);
  EXPECT_NEAR(sum / trials, 42.0, 1.5);
}

TEST(RngTest, FillCoversOddSizes) {
  Rng rng(11);
  for (std::size_t size : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u}) {
    std::vector<std::uint8_t> buf(size, 0);
    rng.fill(buf);
    if (size >= 16) {
      // Extremely unlikely to be all zeros.
      bool any = false;
      for (auto b : buf) any |= b != 0;
      EXPECT_TRUE(any);
    }
  }
}

TEST(AlignedBufferTest, AlignmentAndZeroInit) {
  for (std::size_t size : {1u, 64u, 100u, 4096u}) {
    AlignedBuffer buf(size);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % AlignedBuffer::kAlignment, 0u);
    for (std::size_t i = 0; i < size; ++i) EXPECT_EQ(buf[i], 0);
  }
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer a(128);
  a[5] = 42;
  const std::uint8_t* ptr = a.data();
  AlignedBuffer b = std::move(a);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b[5], 42);
  EXPECT_EQ(b.size(), 128u);
}

TEST(AlignedBufferTest, RegionAndClear) {
  AlignedBuffer buf(64);
  auto region = buf.region(16, 8);
  EXPECT_EQ(region.size(), 8u);
  region[0] = 7;
  EXPECT_EQ(buf[16], 7);
  buf.clear();
  EXPECT_EQ(buf[16], 0);
}

TEST(TablePrinterTest, AlignsColumnsAndPadsRaggedRows) {
  TablePrinter t("demo");
  t.set_header({"a", "long_header"});
  t.add_row({"xx", "1"});
  t.add_row({"y"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("## demo"), std::string::npos);
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t;
  t.set_header({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(IoBufferPoolTest, RegisteredSetIsAlignedStableAndIndexed) {
  IoBufferPool pool(1000, 4096, 3);  // bytes round up to the alignment
  EXPECT_EQ(pool.buffer_bytes(), 4096u);
  EXPECT_EQ(pool.registered_capacity(), 3u);

  const auto regions = pool.regions();
  ASSERT_EQ(regions.size(), 3u);
  for (const auto& r : regions) {
    EXPECT_EQ(r.size(), 4096u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(r.data()) % 4096, 0u);
  }

  // Leases drain the registered set first; each carries its stable index and
  // points into the region registered under that index.
  std::vector<IoBufferPool::Lease> leases;
  std::vector<bool> seen(3, false);
  for (int i = 0; i < 3; ++i) {
    auto l = pool.acquire();
    ASSERT_GE(l->index, 0);
    ASSERT_LT(l->index, 3);
    EXPECT_FALSE(seen[static_cast<std::size_t>(l->index)]) << "index handed out twice";
    seen[static_cast<std::size_t>(l->index)] = true;
    EXPECT_EQ(l->data, regions[static_cast<std::size_t>(l->index)].data());
    leases.push_back(std::move(l));
  }
  // regions() must not move while leases are live (the engine pinned them).
  const auto again = pool.regions();
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(again[i].data(), regions[i].data());
  EXPECT_EQ(pool.overflow_allocs(), 0u);
}

TEST(IoBufferPoolTest, ExhaustionOverflowsToUnregisteredLeases) {
  IoBufferPool pool(512, 512, 2);
  auto a = pool.acquire();
  auto b = pool.acquire();
  auto c = pool.acquire();  // outran the registered set
  EXPECT_EQ(c->index, -1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c->data) % 512, 0u);
  EXPECT_EQ(pool.overflow_allocs(), 1u);
  EXPECT_EQ(pool.in_use(), 3u);

  // Released registered slots come back before new overflow is minted.
  const int freed = a->index;
  a.reset();
  auto d = pool.acquire();
  EXPECT_EQ(d->index, freed);
  EXPECT_EQ(pool.overflow_allocs(), 1u);
}

TEST(FormatSigTest, Formats) {
  EXPECT_EQ(format_sig(0.0), "0");
  EXPECT_EQ(format_sig(1234.5678, 4), "1235");
  EXPECT_EQ(format_sig(0.00012345, 3), "0.000123");
  EXPECT_EQ(format_sig(1e300 * 1e300), "inf");
}


// --- latency histogram -------------------------------------------------------

TEST(LatencyHistogramTest, BucketIndexIsMonotoneAndSelfConsistent) {
  // Every value must land in a bucket whose [lower, upper] contains it, and
  // bucket boundaries must be contiguous: upper(i) + 1 == lower(i + 1).
  std::size_t prev = 0;
  for (std::uint64_t v :
       {0ull, 1ull, 31ull, 32ull, 33ull, 63ull, 64ull, 65ull, 100ull, 1023ull,
        1024ull, 4095ull, 1ull << 20, (1ull << 32) - 1, 1ull << 32, 1ull << 62,
        ~0ull}) {
    const std::size_t i = LatencyHistogram::bucket_index(v);
    ASSERT_LT(i, LatencyHistogram::kBucketCount);
    EXPECT_LE(LatencyHistogram::bucket_lower(i), v);
    EXPECT_GE(LatencyHistogram::bucket_upper(i), v);
    EXPECT_GE(i, prev) << "non-monotone at v=" << v;
    prev = i;
  }
  for (std::size_t i = 0; i + 1 < 512; ++i)
    EXPECT_EQ(LatencyHistogram::bucket_upper(i) + 1, LatencyHistogram::bucket_lower(i + 1));
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // The first two octaves (v < 64) are bucket-per-value: percentiles of
  // small sets come back exactly.
  LatencyHistogram h;
  for (std::uint64_t v : {5ull, 10ull, 20ull, 30ull, 40ull, 50ull, 60ull}) h.record(v);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.min_nanos(), 5u);
  EXPECT_EQ(h.max_nanos(), 60u);
  EXPECT_EQ(h.percentile_nanos(0), 5u);
  EXPECT_EQ(h.percentile_nanos(50), 30u);
  EXPECT_EQ(h.percentile_nanos(100), 60u);
}

TEST(LatencyHistogramTest, PercentileErrorIsBounded) {
  // 32 sub-buckets per octave bound the relative error at ~3.2%; the
  // reported percentile is a bucket upper bound, so it never under-reports.
  LatencyHistogram h;
  Rng rng(77);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = 100 + rng.next_below(50'000'000);  // 100ns..50ms
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double pct : {50.0, 99.0, 99.9}) {
    const auto exact =
        values[std::min(values.size() - 1,
                        static_cast<std::size_t>(pct / 100.0 * values.size()))];
    const auto approx = h.percentile_nanos(pct);
    EXPECT_GE(approx, exact * 96 / 100) << "pct " << pct;
    EXPECT_LE(approx, exact * 104 / 100 + 1) << "pct " << pct;
  }
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.next_below(1'000'000);
    (i % 2 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.total_nanos(), combined.total_nanos());
  for (double pct : {1.0, 50.0, 99.0, 99.9})
    EXPECT_EQ(a.percentile_nanos(pct), combined.percentile_nanos(pct));
  a.clear();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.percentile_nanos(99), 0u);
}

TEST(LatencyHistogramTest, RecordSecondsRoundsToNanos) {
  LatencyHistogram h;
  h.record_seconds(0.001);  // 1ms
  h.record_seconds(-1.0);   // clamps to 0
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min_nanos(), 0u);
  const std::size_t ms = LatencyHistogram::bucket_index(1'000'000);
  EXPECT_LE(LatencyHistogram::bucket_lower(ms), 1'000'000u);
}

TEST(ConcurrentHistogramTest, ShardedRecordingMergesToTheSameAnswer) {
  ConcurrentHistogram ch(4);
  LatencyHistogram expect;
  constexpr int kThreads = 4, kPer = 5000;
  std::vector<std::vector<std::uint64_t>> values(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(200 + t);
    for (int i = 0; i < kPer; ++i) values[t].push_back(rng.next_below(10'000'000));
  }
  for (const auto& vs : values)
    for (auto v : vs) expect.record(v);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (auto v : values[t]) ch.record(v);
    });
  for (auto& th : threads) th.join();

  const LatencyHistogram merged = ch.snapshot();
  EXPECT_EQ(merged.count(), expect.count());
  EXPECT_EQ(merged.total_nanos(), expect.total_nanos());
  for (double pct : {50.0, 99.0, 99.9})
    EXPECT_EQ(merged.percentile_nanos(pct), expect.percentile_nanos(pct));
  EXPECT_EQ(ch.count(), expect.count());
}

}  // namespace
}  // namespace stair
