#include "sim/scrubber.h"

#include <cmath>

namespace stair::sim {

double latent_error_probability(const ScrubPolicy& policy) {
  const double rate = policy.error_rate_per_hour;
  const double t = policy.period_hours;
  if (rate <= 0.0 || t <= 0.0) return 0.0;
  // E_{U~Unif(0,T)}[1 - e^(-rate*U)] = 1 - (1 - e^(-rate*T)) / (rate*T).
  return 1.0 - (-std::expm1(-rate * t)) / (rate * t);
}

double scrubbed_p_sec(double error_rate_per_hour, double period_hours) {
  return latent_error_probability({period_hours, error_rate_per_hour});
}

}  // namespace stair::sim
