// storage_node: the StorageNode service run as a long-lived daemon.
//
//   $ ./storage_node encode <input> <dir> [n=8] [r=16] [m=2]
//   $ ./storage_node serve <dir> [clients=4] [seconds=0]
//   $ ./storage_node            # self-demo: encode -> serve -> drain -> verify
//
// encode bootstraps a StripeStore from a real file. serve starts a
// StorageNode over it — admission queues, priority scheduling, background
// scrub — and, since the node is deliberately transport-free, drives it with
// in-process synthetic tenants (a closed-loop read/write/scan mix standing
// in for a network frontend). It then runs until SIGINT/SIGTERM (or the
// optional duration), printing the metrics surface once a second.
//
// Shutdown is the part worth reading: the signal handler only sets a flag;
// the main loop then calls drain() — stop admitting, finish everything in
// flight, stop the scrubber, re-save the manifest — so the store a restart
// loads is always self-consistent. The self-demo proves it: after serve,
// the store decodes byte-identically to the original input.
//
// Node knobs come from the environment (STAIR_NODE_TENANTS, STAIR_NODE_QUEUE,
// STAIR_NODE_WORKERS, STAIR_NODE_BATCH, STAIR_NODE_SCRUB); malformed values
// abort loudly rather than serve a misconfigured node.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "stair/service.h"
#include "util/rng.h"

namespace fs = std::filesystem;
using namespace stair;

namespace {

constexpr std::size_t kSymbolBytes = 4096;

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

int cmd_encode(const fs::path& input, const fs::path& dir, StairConfig cfg) {
  cfg.w = std::max(cfg.minimum_w(), 8);
  cfg.validate();
  Codec codec(cfg);
  IoPipeline pipeline(codec, {.symbol_bytes = kSymbolBytes});
  const auto st = pipeline.encode_file(input.string(), dir.string());
  if (!st.ok) {
    std::fprintf(stderr, "encode failed: %s\n", st.error.c_str());
    return 1;
  }
  std::printf("encoded %s into %zu stripes at %s (%s)\n", input.string().c_str(),
              st.stripes, dir.string().c_str(), cfg.to_string().c_str());
  return 0;
}

/// Closed-loop synthetic tenant: 80% point reads, 10% stripe writes, 10%
/// scans, a short think time — the stand-in for a network client.
void client_loop(StorageNode& node, std::size_t tenant, std::uint64_t seed,
                 const std::atomic<bool>& stop_flag) {
  const std::size_t stripe_data = node.stripe_data_bytes();
  const std::size_t file_bytes = node.store().file_size;
  const std::size_t full_stripes = file_bytes / stripe_data;  // tail skipped for writes
  const std::size_t read_bytes = std::min<std::size_t>(16 * 1024, file_bytes);
  const std::size_t scan_bytes = std::min<std::size_t>(4 * stripe_data, file_bytes);
  Rng rng(seed);
  std::vector<std::uint8_t> read_buf(read_bytes), scan_buf(scan_bytes);
  std::vector<std::uint8_t> write_buf(stripe_data);
  rng.fill(write_buf);

  while (!stop_flag.load(std::memory_order_relaxed)) {
    const std::uint64_t draw = rng.next_below(100);
    Request req;
    req.tenant = tenant;
    if (draw < 80 || full_stripes == 0) {
      req.type = RequestType::kRead;
      req.offset = rng.next_below(file_bytes - read_bytes + 1);
      req.out = read_buf;
    } else if (draw < 90) {
      req.type = RequestType::kWrite;
      req.stripe = rng.next_below(full_stripes);
      write_buf[rng.next_below(write_buf.size())] ^= 0x5A;
      req.data = write_buf;
    } else {
      req.type = RequestType::kScan;
      req.offset = rng.next_below(file_bytes - scan_bytes + 1);
      req.out = scan_buf;
    }
    node.submit(req).wait();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void print_stats(const StorageNode::Stats& s) {
  std::uint64_t completed = 0, rejected = 0;
  for (const auto& t : s.tenants) {
    completed += t.completed;
    rejected += t.rejected;
  }
  std::printf("  %llu done (%llu rejected, %llu failed, %llu degraded, %llu batched) | "
              "read p50/p99 %.2f/%.2f ms, write %.2f/%.2f, scan %.2f/%.2f | "
              "queue %zu, scrub scanned %zu repaired %zu\n",
              (unsigned long long)completed, (unsigned long long)rejected,
              (unsigned long long)s.failed_requests, (unsigned long long)s.degraded_reads,
              (unsigned long long)s.batched_reads,
              s.read_latency.percentile_ms(50), s.read_latency.percentile_ms(99),
              s.write_latency.percentile_ms(50), s.write_latency.percentile_ms(99),
              s.scan_latency.percentile_ms(50), s.scan_latency.percentile_ms(99),
              s.queue_depth, s.scrub.stripes_scanned, s.scrub.sectors_repaired);
}

int cmd_serve(const fs::path& dir, std::size_t clients, double seconds) {
  const StripeStore manifest = StripeStore::load(dir.string());
  Codec codec(manifest.cfg);
  StorageNode node(codec, dir.string(), node_options_from_env());
  node.start();
  std::printf("serving %s: %zu stripes, %s, %zu synthetic clients "
              "(SIGINT/SIGTERM to drain)\n",
              dir.string().c_str(), manifest.stripes,
              manifest.cfg.to_string().c_str(), clients);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::atomic<bool> stop_flag{false};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c)
    threads.emplace_back(client_loop, std::ref(node),
                         c % node_options_from_env().tenants, 77 + c,
                         std::cref(stop_flag));

  const auto start = std::chrono::steady_clock::now();
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    print_stats(node.stats());
    if (seconds > 0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                .count() >= seconds)
      break;
  }

  std::printf("draining...\n");
  stop_flag.store(true);
  for (auto& t : threads) t.join();
  node.drain();  // finish in-flight work, stop the scrubber, re-save manifest
  print_stats(node.stats());
  node.stop();
  std::printf("stopped; manifest re-saved (the restart recovery point)\n");
  return 0;
}

int self_demo() {
  const fs::path dir = fs::temp_directory_path() / "stair_storage_node_demo";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path input = dir / "input.bin";
  const fs::path store = dir / "store";
  const std::size_t bytes = 2 * 1024 * 1024;
  {
    std::vector<std::uint8_t> data(bytes);
    Rng rng(5);
    rng.fill(data);
    std::ofstream out(input, std::ios::binary);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  }

  const StairConfig cfg{.n = 6, .r = 4, .m = 1, .e = {1, 2}, .w = 8};
  if (int rc = cmd_encode(input, store, cfg)) return rc;
  if (int rc = cmd_serve(store, 4, 3.0)) return rc;

  // The drained store must still decode byte-identically — the manifest the
  // node re-saved is a valid recovery point even after live writes. (Writes
  // replace stripe contents, so compare through a fresh read of the store,
  // not against the original input.)
  const StripeStore manifest = StripeStore::load(store.string());
  Codec codec(manifest.cfg);
  IoPipeline pipeline(codec, {});
  const fs::path output = dir / "output.bin";
  const auto st = pipeline.decode_file(store.string(), output.string());
  if (!st.ok || st.failed_stripes != 0) {
    std::fprintf(stderr, "post-drain decode failed: %s\n", st.error.c_str());
    return 1;
  }
  std::printf("self-demo ok: post-drain store decodes clean (%zu stripes, %zu degraded)\n",
              st.stripes, st.degraded_stripes);
  fs::remove_all(dir);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 1) return self_demo();
    const std::string cmd = argv[1];
    if (cmd == "encode" && (argc == 4 || argc == 7)) {
      StairConfig cfg{.n = 8, .r = 16, .m = 2, .e = {1, 2}};
      if (argc == 7) {
        cfg.n = std::strtoull(argv[4], nullptr, 10);
        cfg.r = std::strtoull(argv[5], nullptr, 10);
        cfg.m = std::strtoull(argv[6], nullptr, 10);
      }
      return cmd_encode(argv[2], argv[3], cfg);
    }
    if (cmd == "serve" && argc >= 3 && argc <= 5) {
      const std::size_t clients = argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 4;
      const double seconds = argc >= 5 ? std::strtod(argv[4], nullptr) : 0.0;
      return cmd_serve(argv[2], std::max<std::size_t>(1, clients), seconds);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage: storage_node encode <input> <dir> [n r m]\n"
               "       storage_node serve <dir> [clients=4] [seconds=0]\n"
               "       storage_node    (self-demo)\n");
  return 2;
}
