// Galois-field arithmetic GF(2^w) for w in {4, 8, 16, 32}.
//
// This module replaces the GF-Complete library [Plank et al., FAST'13] that
// the STAIR paper uses: element arithmetic backed by log/exp tables (a full
// 64 KiB product table for w = 8), and the Mult_XOR *region* primitive that
// all encoding/decoding throughput rests on lives in region.h.
//
// Field instances are immutable and shared; obtain one via stair::gf::field(w).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace stair::gf {

/// Maximum supported word width.
inline constexpr int kMaxW = 32;

/// Finite field GF(2^w) with the conventional primitive polynomials
/// (the same ones jerasure/GF-Complete use, so codewords are interoperable).
///
/// Addition is XOR. Multiplication uses log/exp tables for w <= 16 and
/// shift-and-add reduction for w = 32. All operations are total: division by
/// zero is a programming error and asserts in debug builds.
class Field {
 public:
  /// Builds GF(2^w). Prefer the shared accessor field(w); construction of the
  /// w = 16 tables costs a few hundred kilobytes.
  explicit Field(int w);

  Field(const Field&) = delete;
  Field& operator=(const Field&) = delete;

  /// Word width in bits.
  int w() const { return w_; }

  /// Field size 2^w as a 64-bit count (2^32 does not fit in uint32_t).
  std::uint64_t order() const { return std::uint64_t{1} << w_; }

  /// Largest element value, 2^w - 1; also the multiplicative group order.
  std::uint32_t max_element() const { return static_cast<std::uint32_t>(order() - 1); }

  /// Field addition (= subtraction): bitwise XOR.
  static std::uint32_t add(std::uint32_t a, std::uint32_t b) { return a ^ b; }

  /// Field multiplication.
  std::uint32_t mul(std::uint32_t a, std::uint32_t b) const;

  /// Field division a / b; b must be nonzero.
  std::uint32_t div(std::uint32_t a, std::uint32_t b) const;

  /// Multiplicative inverse; a must be nonzero.
  std::uint32_t inv(std::uint32_t a) const;

  /// a raised to the (non-negative) integer power e.
  std::uint32_t pow(std::uint32_t a, std::uint64_t e) const;

  /// alpha^i where alpha = 2 is the primitive element; i taken mod (2^w - 1).
  std::uint32_t exp(std::uint64_t i) const;

  /// Discrete log base alpha of a nonzero element.
  std::uint32_t log(std::uint32_t a) const;

  /// Primitive polynomial (without the leading x^w term for w = 32).
  std::uint64_t primitive_poly() const { return poly_; }

  /// For w = 8 only: row `a` of the full 256x256 product table
  /// (products[a][b] = a*b). Used by the scalar region kernel.
  const std::uint8_t* product_row8(std::uint32_t a) const;

 private:
  std::uint32_t mul_slow(std::uint32_t a, std::uint32_t b) const;

  int w_;
  std::uint64_t poly_;
  std::vector<std::uint32_t> log_;     // log_[a] for a in [1, 2^w); log_[0] unused
  std::vector<std::uint32_t> exp_;     // exp_[i] for i in [0, 2*(2^w-1))
  std::vector<std::uint8_t> prod8_;    // 64 KiB product table, w = 8 only
};

/// Shared immutable field instance for w in {4, 8, 16, 32}.
const Field& field(int w);

}  // namespace stair::gf
