// Aligned byte buffers used as symbol storage for region coding operations.
//
// Erasure-code kernels process "symbols" that are contiguous byte regions
// (sectors). The SIMD fast paths want 64-byte alignment; AlignedBuffer
// guarantees it regardless of allocator behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

namespace stair {

/// Owning, 64-byte-aligned byte buffer.
class AlignedBuffer {
 public:
  static constexpr std::size_t kAlignment = 64;

  AlignedBuffer() = default;

  /// Allocates `size` zero-initialized bytes.
  explicit AlignedBuffer(std::size_t size);

  AlignedBuffer(AlignedBuffer&&) noexcept = default;
  AlignedBuffer& operator=(AlignedBuffer&&) noexcept = default;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::uint8_t* data() { return data_.get(); }
  const std::uint8_t* data() const { return data_.get(); }

  std::span<std::uint8_t> span() { return {data_.get(), size_}; }
  std::span<const std::uint8_t> span() const { return {data_.get(), size_}; }

  /// Subregion [offset, offset + len).
  std::span<std::uint8_t> region(std::size_t offset, std::size_t len) {
    return span().subspan(offset, len);
  }
  std::span<const std::uint8_t> region(std::size_t offset, std::size_t len) const {
    return span().subspan(offset, len);
  }

  /// Sets every byte to zero.
  void clear();

  std::uint8_t& operator[](std::size_t i) { return data_[i]; }
  std::uint8_t operator[](std::size_t i) const { return data_[i]; }

 private:
  struct Free {
    void operator()(std::uint8_t* p) const { ::operator delete[](p, std::align_val_t{kAlignment}); }
  };
  std::unique_ptr<std::uint8_t[], Free> data_;
  std::size_t size_ = 0;
};

}  // namespace stair
