// StairConfig and StairLayout tests: parameter validation, derived
// quantities, coverage-vector enumeration, and canonical-grid geometry
// (including the Figure 2/5 exemplar, n=8 r=4 m=2 e=(1,1,2)).

#include <gtest/gtest.h>

#include "stair/stair_layout.h"

namespace stair {
namespace {

StairConfig exemplar() { return {.n = 8, .r = 4, .m = 2, .e = {1, 1, 2}}; }

TEST(StairConfigTest, DerivedQuantitiesOfTheExemplar) {
  const StairConfig cfg = exemplar();
  EXPECT_EQ(cfg.m_prime(), 3u);
  EXPECT_EQ(cfg.s(), 4u);
  EXPECT_EQ(cfg.e_max(), 2u);
  EXPECT_EQ(cfg.data_symbols_inside(), 4u * 6u - 4u);
  EXPECT_DOUBLE_EQ(cfg.storage_efficiency(), 20.0 / 32.0);
  EXPECT_DOUBLE_EQ(cfg.devices_saved(), 3.0 - 4.0 / 4.0);
  EXPECT_EQ(cfg.minimum_w(), 4);
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.to_string(), "STAIR(n=8, r=4, m=2, e=(1,1,2))");
}

TEST(StairConfigTest, ValidationCatchesEveryConstraint) {
  auto expect_bad = [](StairConfig cfg) { EXPECT_THROW(cfg.validate(), std::invalid_argument); };
  expect_bad({.n = 1, .r = 4, .m = 0, .e = {1}});          // too few chunks
  expect_bad({.n = 8, .r = 0, .m = 2, .e = {1}});          // no sectors
  expect_bad({.n = 8, .r = 4, .m = 8, .e = {1}});          // m >= n
  expect_bad({.n = 8, .r = 4, .m = 2, .e = {}});           // empty e
  expect_bad({.n = 8, .r = 4, .m = 2, .e = {0, 1}});       // zero entry
  expect_bad({.n = 8, .r = 4, .m = 2, .e = {2, 1}});       // not ascending
  expect_bad({.n = 8, .r = 4, .m = 2, .e = {5}});          // e_max > r
  expect_bad({.n = 8, .r = 4, .m = 6, .e = {1, 1, 1}});    // m' > n - m
  expect_bad({.n = 2, .r = 2, .m = 1, .e = {2}});          // s eats all data
  expect_bad({.n = 8, .r = 4, .m = 2, .e = {1}, .w = 7});  // bad word size
  StairConfig too_wide{.n = 250, .r = 4, .m = 2, .e = {1, 1, 1, 1, 1, 1, 1}, .w = 8};
  EXPECT_THROW(too_wide.validate(), std::invalid_argument);  // n + m' > 2^w
}

TEST(StairConfigTest, MinimumWGrowsWithShape) {
  EXPECT_EQ((StairConfig{.n = 8, .r = 4, .m = 2, .e = {1}}).minimum_w(), 4);
  EXPECT_EQ((StairConfig{.n = 16, .r = 16, .m = 2, .e = {1}}).minimum_w(), 8);
  EXPECT_EQ((StairConfig{.n = 250, .r = 16, .m = 2, .e = {1, 1}}).minimum_w(), 8);
  EXPECT_EQ((StairConfig{.n = 300, .r = 16, .m = 2, .e = {1}}).minimum_w(), 16);
}

TEST(StairConfigTest, CoverageEnumerationMatchesPartitions) {
  // s = 4 with entries <= 4 and m' <= 4: the five partitions of Figure 9's
  // x-axis: (4), (1,3), (2,2), (1,1,2), (1,1,1,1).
  const auto all = enumerate_coverage_vectors(4, 4, 4);
  EXPECT_EQ(all.size(), 5u);
  for (const auto& e : all) {
    std::size_t sum = 0;
    for (std::size_t v : e) sum += v;
    EXPECT_EQ(sum, 4u);
    EXPECT_TRUE(std::is_sorted(e.begin(), e.end()));
  }
  // Restricting m' or the entry cap prunes correctly.
  EXPECT_EQ(enumerate_coverage_vectors(4, 4, 2).size(), 3u);  // (4),(1,3),(2,2)
  EXPECT_EQ(enumerate_coverage_vectors(4, 2, 4).size(), 3u);  // (2,2),(1,1,2),(1^4)
  EXPECT_EQ(enumerate_coverage_vectors(1, 1, 1).size(), 1u);
}

TEST(StairLayoutTest, CanonicalGridOfTheExemplar) {
  const StairLayout layout(exemplar(), GlobalParityMode::kInside);
  EXPECT_EQ(layout.canonical_rows(), 6u);   // r + e_max = 4 + 2
  EXPECT_EQ(layout.canonical_cols(), 11u);  // n + m' = 8 + 3
  EXPECT_EQ(layout.total_symbols(), 66u);
  EXPECT_EQ(layout.stored_count(), 32u);

  // Region predicates at Figure 3/5 landmarks.
  EXPECT_TRUE(layout.is_stored(0, 0));
  EXPECT_TRUE(layout.is_row_parity(2, 6));
  EXPECT_TRUE(layout.is_row_parity(2, 7));
  EXPECT_FALSE(layout.is_row_parity(2, 5));
  EXPECT_TRUE(layout.is_intermediate(1, 8));
  EXPECT_TRUE(layout.is_virtual(4, 0));
  EXPECT_TRUE(layout.is_outside_global(4, 8));    // g_{0,0}
  EXPECT_TRUE(layout.is_outside_global(5, 10));   // g_{1,2}
  EXPECT_TRUE(layout.is_dummy(5, 8));             // e_0 = 1 < 2
  EXPECT_TRUE(layout.is_dummy(5, 9));

  // Inside globals: Figure 5's hat-g placement.
  EXPECT_EQ(layout.global_column(0), 3u);
  EXPECT_EQ(layout.global_column(2), 5u);
  EXPECT_TRUE(layout.is_inside_global(3, 3));   // ĝ_{0,0}
  EXPECT_TRUE(layout.is_inside_global(3, 4));   // ĝ_{0,1}
  EXPECT_TRUE(layout.is_inside_global(2, 5));   // ĝ_{0,2}
  EXPECT_TRUE(layout.is_inside_global(3, 5));   // ĝ_{1,2}
  EXPECT_FALSE(layout.is_inside_global(2, 4));
  EXPECT_FALSE(layout.is_inside_global(3, 2));

  EXPECT_EQ(layout.data_ids().size(), 20u);
  EXPECT_EQ(layout.parity_ids().size(), 2u * 4u + 4u);
  EXPECT_EQ(layout.outside_global_ids().size(), 4u);
}

TEST(StairLayoutTest, OutsideModeHasNoInsideGlobals) {
  const StairLayout layout(exemplar(), GlobalParityMode::kOutside);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 8; ++j) EXPECT_FALSE(layout.is_inside_global(i, j));
  EXPECT_EQ(layout.data_ids().size(), 24u);  // all r*(n-m) positions are data
  // Parities: 8 row parities + 4 outside globals.
  EXPECT_EQ(layout.parity_ids().size(), 12u);
}

TEST(StairLayoutTest, SlotOfColumnInvertsGlobalColumn) {
  const StairLayout layout(exemplar(), GlobalParityMode::kInside);
  for (std::size_t l = 0; l < 3; ++l)
    EXPECT_EQ(layout.slot_of_column(layout.global_column(l)), l);
  EXPECT_EQ(layout.slot_of_column(0), 3u);  // not a stair column
  EXPECT_EQ(layout.slot_of_column(6), 3u);  // row parity column
}

TEST(StairLayoutTest, IdRowColRoundTrip) {
  const StairLayout layout(exemplar(), GlobalParityMode::kInside);
  for (std::size_t row = 0; row < layout.canonical_rows(); ++row)
    for (std::size_t col = 0; col < layout.canonical_cols(); ++col) {
      const auto sid = layout.id(row, col);
      EXPECT_EQ(layout.row_of(sid), row);
      EXPECT_EQ(layout.col_of(sid), col);
    }
}

}  // namespace
}  // namespace stair
