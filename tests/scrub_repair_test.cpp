// Scrub + rolling-repair battery: detect→repair→re-verify round trips that
// restore stores byte-identically (flipped sectors, vanished devices, torn
// chunk writes), whole-device rebuild under its concurrency bound with
// ranged degraded reads served concurrently, phase-scoped fault plans that
// hit scrub IO while foreground traffic stays healthy, pacing (token bucket
// + idle-slot gate), the power-cut battery around the manifest as recovery
// point, and the races TSan watches: scrub vs foreground reads, scrub vs
// rewrite, repair vs scrub.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "gf/kernel.h"
#include "stair/io_pipeline.h"
#include "stair/scrub_repair.h"
#include "util/rng.h"

namespace stair {
namespace {

namespace fs = std::filesystem;

// --- plumbing (the io_pipeline_test battery's idiom) ------------------------

struct TempDir {
  fs::path path;

  explicit TempDir(const std::string& hint) {
    path = fs::temp_directory_path() /
           ("stair_scrub_test_" + hint + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }

  std::string str() const { return path.string(); }
};

std::vector<std::uint8_t> write_random_file(const fs::path& p, std::size_t bytes,
                                            std::uint64_t seed) {
  std::vector<std::uint8_t> data(bytes);
  Rng rng(seed);
  rng.fill(data);
  std::ofstream out(p, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return data;
}

std::vector<std::uint8_t> read_all(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void flip_bytes(const fs::path& p, std::uint64_t offset, std::size_t len) {
  std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f) << "cannot open " << p;
  std::vector<char> buf(len);
  f.seekg(static_cast<std::streamoff>(offset));
  f.read(buf.data(), static_cast<std::streamsize>(len));
  for (char& c : buf) c = static_cast<char>(c ^ 0xA5);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(buf.data(), static_cast<std::streamsize>(len));
}

struct StoreCase {
  StairConfig cfg;
  std::size_t symbol;
};

std::vector<StoreCase> fault_cases() {
  return {
      {{.n = 6, .r = 4, .m = 1, .e = {1, 2}, .w = 8}, 512},
      {{.n = 8, .r = 6, .m = 2, .e = {1, 2}, .w = 8}, 256},
      {{.n = 9, .r = 4, .m = 2, .e = {1, 1, 2}, .w = 8}, 384},
  };
}

std::vector<io::Backend> io_backends() {
  std::vector<io::Backend> b{io::Backend::kThreads};
  if (io::Engine::uring_supported()) b.push_back(io::Backend::kUring);
  return b;
}

std::vector<std::uint8_t> encode_store(const TempDir& dir, const StoreCase& c,
                                       std::size_t bytes, std::uint64_t seed,
                                       IoPipeline::Options opts = {}) {
  const auto data = write_random_file(dir.path / "input.bin", bytes, seed);
  Codec codec(c.cfg);
  opts.symbol_bytes = c.symbol;
  IoPipeline pipeline(codec, opts);
  const auto st = pipeline.encode_file((dir.path / "input.bin").string(),
                                       (dir.path / "store").string());
  EXPECT_TRUE(st.ok) << st.error;
  return data;
}

std::string store_dir(const TempDir& dir) { return (dir.path / "store").string(); }

std::string dev_path(const TempDir& dir, std::size_t j) {
  return StripeStore::device_path(store_dir(dir), j);
}

/// Every device file's bytes, for byte-identical-store comparisons.
std::vector<std::vector<std::uint8_t>> device_contents(const TempDir& dir,
                                                       std::size_t n) {
  std::vector<std::vector<std::uint8_t>> all;
  for (std::size_t j = 0; j < n; ++j) all.push_back(read_all(dev_path(dir, j)));
  return all;
}

IoPipeline::Stats decode_store(const TempDir& dir, const StoreCase& c) {
  Codec codec(c.cfg);
  IoPipeline pipeline(codec, {.symbol_bytes = c.symbol});
  return pipeline.decode_file(store_dir(dir), (dir.path / "output.bin").string());
}

// --- scrub: detect, repair, re-verify ---------------------------------------

TEST(ScrubRepairTest, CleanStoreScrubsQuietly) {
  for (io::Backend backend : io_backends()) {
    const StoreCase c = fault_cases()[0];
    TempDir dir("clean");
    encode_store(dir, c, 64 * 1024, 41);

    Codec codec(c.cfg);
    Scrubber scrubber(codec, {.backend = backend});
    const ScrubReport rep = scrubber.scrub(store_dir(dir));
    EXPECT_TRUE(rep.ok) << rep.error;
    EXPECT_TRUE(rep.completed);
    EXPECT_EQ(rep.stripes_scanned, rep.stripes);
    EXPECT_GT(rep.stripes, 0u);
    EXPECT_EQ(rep.sectors_corrupt, 0u);
    EXPECT_EQ(rep.chunks_missing, 0u);
    EXPECT_EQ(rep.sectors_repaired, 0u);
    EXPECT_EQ(rep.bytes_written, 0u);
  }
}

// The acceptance round trip: scrub→detect→sector-repair→re-verify leaves the
// store byte-identical to the clean one, across config coverage shapes and
// IO backends (CI's backend matrix adds the GF dimension on top).
// The acceptance round trip: scrub -> detect -> sector repair -> re-verify,
// byte-identical to the pre-corruption store, across GF backend x IO backend
// x coverage shape.
TEST(ScrubRepairTest, RepairsFlippedSectorsByteIdentically) {
  struct DispatchGuard {
    ~DispatchGuard() { gf::reset_backend(); }
  } guard;

  for (gf::Backend gfb : {gf::Backend::kScalar, gf::Backend::kSsse3,
                          gf::Backend::kAvx2, gf::Backend::kGfni,
                          gf::Backend::kAvx512}) {
    if (!gf::backend_supported(gfb)) continue;
    ASSERT_TRUE(gf::force_backend(gfb));
    for (io::Backend backend : io_backends()) {
      for (const StoreCase& c : fault_cases()) {
        SCOPED_TRACE(std::string(gf::backend_name(gfb)) + "/" +
                     io::backend_name(backend) + "/" + c.cfg.to_string());
        TempDir dir("flip");
        encode_store(dir, c, 48 * 1024, 42);
        const auto clean = device_contents(dir, c.cfg.n);

        // In-coverage damage: one sector on one device, two on another
        // stripe's other device (every case has e_max >= 2 and m >= 1).
        // Stride from the manifest: padded when the store is direct-mode.
        const auto store = StripeStore::load(store_dir(dir));
        flip_bytes(dev_path(dir, 1), store.chunk_offset(0) + 0 * c.symbol, c.symbol);
        flip_bytes(dev_path(dir, 3), store.chunk_offset(1) + 2 * c.symbol, 32);

        Codec codec(c.cfg);
        Scrubber scrubber(codec, {.backend = backend});
        const ScrubReport rep = scrubber.scrub(store_dir(dir));
        EXPECT_TRUE(rep.ok) << rep.error;
        EXPECT_EQ(rep.sectors_corrupt, 2u);
        EXPECT_EQ(rep.stripes_degraded, 2u);
        EXPECT_EQ(rep.sectors_repaired, 2u);
        EXPECT_EQ(rep.repair_failures, 0u);
        EXPECT_EQ(rep.stripes_unrecoverable, 0u);

        // Re-verify: a second pass finds nothing, and the store is
        // byte-identical to its pre-corruption self.
        const ScrubReport again = scrubber.scrub(store_dir(dir));
        EXPECT_TRUE(again.ok) << again.error;
        EXPECT_EQ(again.sectors_corrupt, 0u);
        EXPECT_EQ(again.sectors_repaired, 0u);
        EXPECT_EQ(device_contents(dir, c.cfg.n), clean);

        const auto dec = decode_store(dir, c);
        EXPECT_TRUE(dec.ok) << dec.error;
        EXPECT_EQ(dec.degraded_stripes, 0u);
      }
    }
  }
}

TEST(ScrubRepairTest, RepairsVanishedDeviceChunks) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("vanish");
  encode_store(dir, c, 32 * 1024, 43);
  const auto clean = device_contents(dir, c.cfg.n);
  fs::remove(dev_path(dir, 2));

  Codec codec(c.cfg);
  Scrubber scrubber(codec, {});
  const ScrubReport rep = scrubber.scrub(store_dir(dir));
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.chunks_missing, rep.stripes);
  EXPECT_EQ(rep.sectors_repaired, rep.stripes * c.cfg.r);
  EXPECT_EQ(device_contents(dir, c.cfg.n), clean);

  const ScrubReport again = scrubber.scrub(store_dir(dir));
  EXPECT_EQ(again.chunks_missing, 0u);
  EXPECT_EQ(again.sectors_corrupt, 0u);
}

TEST(ScrubRepairTest, DetectOnlyScrubWritesNothing) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("detect");
  encode_store(dir, c, 32 * 1024, 44);
  flip_bytes(dev_path(dir, 1), 0, c.symbol);
  const auto damaged = device_contents(dir, c.cfg.n);

  Codec codec(c.cfg);
  Scrubber scrubber(codec, {.repair = false});
  const ScrubReport rep = scrubber.scrub(store_dir(dir));
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.sectors_corrupt, 1u);
  EXPECT_EQ(rep.sectors_repaired, 0u);
  EXPECT_EQ(rep.bytes_written, 0u);
  EXPECT_EQ(device_contents(dir, c.cfg.n), damaged);  // untouched
}

TEST(ScrubRepairTest, DamageBeyondCoverageCountedNotRepaired) {
  const StoreCase c = fault_cases()[0];  // m=1, e={1,2}
  TempDir dir("beyond");
  encode_store(dir, c, 32 * 1024, 45);

  // Stripe 0: damage on 4 devices — beyond m=1 devices + m'=2 sector
  // columns. Stripe 1: one in-coverage sector, which must still be fixed.
  const auto store = StripeStore::load(store_dir(dir));
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < c.cfg.r; ++i)
      flip_bytes(dev_path(dir, j), i * c.symbol, 16);
  flip_bytes(dev_path(dir, 5), store.chunk_offset(1), c.symbol);

  Codec codec(c.cfg);
  Scrubber scrubber(codec, {});
  const ScrubReport rep = scrubber.scrub(store_dir(dir));
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.stripes_unrecoverable, 1u);
  EXPECT_GE(rep.sectors_repaired, 1u);

  const ScrubReport again = scrubber.scrub(store_dir(dir));
  EXPECT_EQ(again.stripes_unrecoverable, 1u);  // still there, still counted
  EXPECT_EQ(again.stripes_degraded, 1u);       // but stripe 1 is healed
}

TEST(ScrubRepairTest, MismatchedCodecConfigRefusesCleanly) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("mismatch");
  encode_store(dir, c, 16 * 1024, 46);

  Codec codec(fault_cases()[1].cfg);
  Scrubber scrubber(codec, {});
  const ScrubReport rep = scrubber.scrub(store_dir(dir));
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("does not match"), std::string::npos) << rep.error;
}

// --- whole-device rebuild ----------------------------------------------------

TEST(ScrubRepairTest, RebuildsDeviceUnderConcurrencyBound) {
  for (io::Backend backend : io_backends()) {
    const StoreCase c = fault_cases()[1];
    TempDir dir("rebuild");
    encode_store(dir, c, 96 * 1024, 47);
    const auto clean = device_contents(dir, c.cfg.n);
    fs::remove(dev_path(dir, 3));

    Codec codec(c.cfg);
    Scrubber scrubber(codec, {.stripes_in_flight = 3, .backend = backend});
    const ScrubReport rep = scrubber.rebuild_device(store_dir(dir), 3);
    EXPECT_TRUE(rep.ok) << rep.error;
    EXPECT_TRUE(rep.completed);
    EXPECT_EQ(rep.sectors_repaired, rep.stripes * c.cfg.r);
    EXPECT_LE(scrubber.slots_created(), 3u);  // the concurrency bound held
    EXPECT_EQ(device_contents(dir, c.cfg.n), clean);

    const auto dec = decode_store(dir, c);
    EXPECT_TRUE(dec.ok) << dec.error;
    EXPECT_EQ(dec.degraded_stripes, 0u);
  }
}

TEST(ScrubRepairTest, RebuildRepairsSurvivorDamageOnTheWay) {
  const StoreCase c = fault_cases()[1];  // m=2: survivor sector + lost device
  TempDir dir("rebuild_survivor");
  encode_store(dir, c, 48 * 1024, 48);
  const auto clean = device_contents(dir, c.cfg.n);
  fs::remove(dev_path(dir, 0));
  flip_bytes(dev_path(dir, 4), 2 * c.symbol, 64);  // stripe 0, row 2

  Codec codec(c.cfg);
  Scrubber scrubber(codec, {});
  const ScrubReport rep = scrubber.rebuild_device(store_dir(dir), 0);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.sectors_corrupt, 1u);
  EXPECT_EQ(rep.sectors_repaired, rep.stripes * c.cfg.r + 1);
  EXPECT_EQ(device_contents(dir, c.cfg.n), clean);
}

TEST(ScrubRepairTest, RangedReadsServedDuringRebuild) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("read_during_rebuild");
  const std::size_t bytes = 192 * 1024;
  const auto data = encode_store(dir, c, bytes, 49);
  fs::remove(dev_path(dir, 1));

  Codec codec(c.cfg);
  IoPipeline pipeline(codec, {.symbol_bytes = c.symbol});
  Scrubber scrubber(codec, {.stripes_in_flight = 2});

  std::atomic<bool> rebuilding{true};
  ScrubReport rep;
  std::thread rebuilder([&] {
    rep = scrubber.rebuild_device(store_dir(dir), 1);
    rebuilding.store(false);
  });

  // Foreground: ranged reads land byte-exact the whole time — served from
  // healthy sectors where possible, through the degraded-read schedule
  // slice where the rebuilding device (or its half-written chunk) is hit.
  Rng rng(7);
  std::size_t reads = 0;
  do {
    const std::size_t len = 1 + rng.next_below(3 * c.symbol);
    const std::size_t off = rng.next_below(bytes - len);
    std::vector<std::uint8_t> out(len);
    const auto st = pipeline.read_range(store_dir(dir), off, out);
    ASSERT_TRUE(st.ok) << st.error;
    ASSERT_TRUE(std::equal(out.begin(), out.end(), data.begin() + off));
    ++reads;
  } while (rebuilding.load() || reads < 16);
  rebuilder.join();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_GE(reads, 16u);
}

// --- pacing ------------------------------------------------------------------

TEST(ScrubRepairTest, TokenBucketPacesThePass) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("paced");
  encode_store(dir, c, 96 * 1024, 50);

  const StripeStore store = StripeStore::load(store_dir(dir));
  const double store_bytes =
      static_cast<double>(store.stripes * store.cfg.n * store.chunk_bytes());
  // A rate sized so the pass takes ~150 ms beyond its burst.
  const double mbps = (store_bytes / (1024.0 * 1024.0)) / 0.15;

  Codec codec(c.cfg);
  Scrubber scrubber(codec,
                    {.rate_mbps = mbps, .burst_bytes = 0.0, .yield_to_foreground = false});
  const auto t0 = std::chrono::steady_clock::now();
  const ScrubReport rep = scrubber.scrub(store_dir(dir));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_GT(rep.throttle_stalls, 0u);
  EXPECT_GE(std::chrono::duration<double>(elapsed).count(), 0.08);
}

TEST(ScrubRepairTest, IdleSlotGateHoldsWhileForegroundBusy) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("gated");
  encode_store(dir, c, 32 * 1024, 51);

  Codec codec(c.cfg);
  std::atomic<int> busy_polls{0};
  ScrubOptions opts;
  opts.max_stall = std::chrono::milliseconds(50);
  // Report "busy" for the first few polls, then idle: the gate must have
  // held (stall counted) and then released well before max_stall forced it.
  opts.hold = [&busy_polls] { return busy_polls.fetch_add(1) < 5; };
  Scrubber scrubber(codec, opts);
  const ScrubReport rep = scrubber.scrub(store_dir(dir));
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_GT(rep.throttle_stalls, 0u);
  EXPECT_GT(busy_polls.load(), 5);
}

// --- phase-scoped fault plans ------------------------------------------------

TEST(ScrubRepairTest, ScrubPhaseFaultHitsScrubNotForeground) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("phase");
  encode_store(dir, c, 32 * 1024, 52);

  io::FaultInjectingEngine eng(io::Engine::create(io::Backend::kThreads));
  // Every scrub-phase read of device 1 dies; foreground reads of the same
  // bytes pass through clean.
  eng.add_fault({.kind = io::Fault::Kind::kReadError,
                 .file = "dev_01.bin",
                 .phase = io::IoPhase::kScrub});

  Codec codec(c.cfg);
  IoPipeline pipeline(codec, {.symbol_bytes = c.symbol, .engine = &eng});
  Scrubber scrubber(codec, {.repair = false, .engine = &eng});

  const ScrubReport rep = scrubber.scrub(store_dir(dir));
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.chunks_missing, rep.stripes);  // scrub saw the fault...
  EXPECT_GT(eng.hits(), 0u);

  const auto dec = pipeline.decode_file(store_dir(dir), (dir.path / "out.bin").string());
  EXPECT_TRUE(dec.ok) << dec.error;  // ...foreground never did
  EXPECT_EQ(dec.chunks_missing, 0u);
  EXPECT_EQ(dec.degraded_stripes, 0u);

  std::vector<std::uint8_t> out(1024);
  const auto rr = pipeline.read_range(store_dir(dir), 0, out);
  EXPECT_TRUE(rr.ok) << rr.error;
  EXPECT_EQ(rr.degraded_stripes, 0u);
}

TEST(ScrubRepairTest, RepairPhaseFaultSurfacesAsRepairFailure) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("repair_fault");
  encode_store(dir, c, 32 * 1024, 53);
  flip_bytes(dev_path(dir, 1), 0, c.symbol);

  io::FaultInjectingEngine eng(io::Engine::create(io::Backend::kThreads));
  eng.add_fault({.kind = io::Fault::Kind::kWriteError,
                 .file = "dev_01.bin",
                 .phase = io::IoPhase::kRepair});

  Codec codec(c.cfg);
  Scrubber scrubber(codec, {.engine = &eng});
  const ScrubReport rep = scrubber.scrub(store_dir(dir));
  EXPECT_TRUE(rep.ok) << rep.error;  // a failed repair is counted, not fatal
  EXPECT_EQ(rep.sectors_corrupt, 1u);
  EXPECT_EQ(rep.sectors_repaired, 0u);
  EXPECT_GE(rep.repair_failures, 1u);
  EXPECT_GT(eng.hits(), 0u);
}

// --- power-cut battery -------------------------------------------------------

TEST(ScrubRepairTest, TornChunkWriteRecoveredByScrub) {
  for (const StoreCase& c : fault_cases()) {
    TempDir dir("torn_chunk");
    // Power cut mid-chunk-write during encode: the write REPORTS success but
    // only a prefix landed. The manifest (written after data drains) is the
    // recovery point; scrub finds the lie and repairs it.
    auto inner = io::Engine::create(io::Backend::kThreads);
    io::FaultInjectingEngine eng(std::move(inner));
    eng.add_fault({.kind = io::Fault::Kind::kTornWrite,
                   .file = "dev_02.bin",
                   .offset = 0,
                   .length = c.cfg.r * c.symbol,
                   .keep_bytes = c.symbol + 17,
                   .once = true});

    const auto data = write_random_file(dir.path / "input.bin", 64 * 1024, 54);
    Codec codec(c.cfg);
    IoPipeline pipeline(codec, {.symbol_bytes = c.symbol, .engine = &eng});
    const auto enc = pipeline.encode_file((dir.path / "input.bin").string(), store_dir(dir));
    ASSERT_TRUE(enc.ok) << enc.error;
    ASSERT_EQ(eng.hits(), 1u);

    Scrubber scrubber(codec, {.engine = &eng});
    const ScrubReport rep = scrubber.scrub(store_dir(dir));
    EXPECT_TRUE(rep.ok) << rep.error;
    EXPECT_GT(rep.sectors_corrupt, 0u);
    EXPECT_EQ(rep.sectors_repaired, rep.sectors_corrupt);

    const auto dec = decode_store(dir, c);
    EXPECT_TRUE(dec.ok) << dec.error;
    EXPECT_EQ(dec.degraded_stripes, 0u);
    EXPECT_EQ(read_all(dir.path / "output.bin"), data);
  }
}

TEST(ScrubRepairTest, TornManifestTmpLeavesRecoveryPointIntact) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("torn_manifest");
  const auto data = encode_store(dir, c, 32 * 1024, 55);

  // Power cut mid-manifest-save: save() writes aside and renames, so a torn
  // temp file is debris, never the manifest. Simulate the debris.
  std::ofstream torn(store_dir(dir) + "/manifest.txt.tmp0.1", std::ios::trunc);
  torn << "stair_store 1\nn 6\nr 4\nm";  // cut mid-write
  torn.close();

  EXPECT_NO_THROW(StripeStore::load(store_dir(dir)));
  const auto dec = decode_store(dir, c);
  EXPECT_TRUE(dec.ok) << dec.error;
  EXPECT_EQ(read_all(dir.path / "output.bin"), data);

  // And a fresh save replaces the manifest atomically: still loadable, no
  // half-written state observable before the rename.
  StripeStore store = StripeStore::load(store_dir(dir));
  EXPECT_NO_THROW(store.save(store_dir(dir)));
  EXPECT_NO_THROW(StripeStore::load(store_dir(dir)));
}

TEST(ScrubRepairTest, TruncatedManifestFailsScrubCleanly) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("trunc_manifest");
  encode_store(dir, c, 32 * 1024, 56);

  const auto manifest = read_all(StripeStore::manifest_path(store_dir(dir)));
  std::ofstream out(StripeStore::manifest_path(store_dir(dir)),
                    std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(manifest.data()),
            static_cast<std::streamsize>(manifest.size() / 2));
  out.close();

  Codec codec(c.cfg);
  Scrubber scrubber(codec, {});
  const ScrubReport rep = scrubber.scrub(store_dir(dir));
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("manifest"), std::string::npos) << rep.error;
  EXPECT_EQ(rep.stripes_scanned, 0u);
  EXPECT_EQ(rep.bytes_written, 0u);  // a scrubber without a manifest writes nothing
}

// --- races (the TSan battery) ------------------------------------------------

TEST(ScrubRepairTest, BackgroundScrubRacesForegroundReads) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("race_reads");
  const std::size_t bytes = 96 * 1024;
  const auto data = encode_store(dir, c, bytes, 57);
  // Standing corruption so repair writes genuinely race the reads.
  flip_bytes(dev_path(dir, 1), 0, c.symbol);
  flip_bytes(dev_path(dir, 4), 3 * c.symbol, 64);

  Codec codec(c.cfg);
  IoPipeline pipeline(codec, {.symbol_bytes = c.symbol});
  Scrubber scrubber(codec, {.stripes_in_flight = 2});
  scrubber.start(store_dir(dir), std::chrono::milliseconds(1));

  // Repair writes restore exactly the original bytes, so every ranged read
  // must come back byte-exact no matter how the race interleaves: a torn
  // observation fails its checksum and re-resolves through the decode slice.
  Rng rng(9);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t len = 1 + rng.next_below(2 * c.symbol);
    const std::size_t off = rng.next_below(bytes - len);
    std::vector<std::uint8_t> out(len);
    const auto st = pipeline.read_range(store_dir(dir), off, out);
    ASSERT_TRUE(st.ok) << st.error;
    ASSERT_TRUE(std::equal(out.begin(), out.end(), data.begin() + off));
  }
  const ScrubReport rep = scrubber.stop();
  EXPECT_TRUE(rep.ok) << rep.error;

  const ScrubReport final_pass = Scrubber(codec, {}).scrub(store_dir(dir));
  EXPECT_TRUE(final_pass.ok) << final_pass.error;
  EXPECT_EQ(final_pass.sectors_corrupt, 0u);  // the background loop healed it
}

TEST(ScrubRepairTest, DetectOnlyScrubRacesStoreRewrite) {
  const StoreCase c = fault_cases()[0];
  TempDir dir("race_rewrite");
  encode_store(dir, c, 64 * 1024, 58);

  Codec codec(c.cfg);
  // Detect-only: the scrubber may observe half-rewritten stripes (counted
  // as corrupt/unrecoverable, that's honest) but must never write, so the
  // foreground rewrite always wins.
  Scrubber scrubber(codec, {.repair = false});
  scrubber.start(store_dir(dir), std::chrono::milliseconds(0));

  IoPipeline pipeline(codec, {.symbol_bytes = c.symbol});
  const auto fresh = write_random_file(dir.path / "input2.bin", 64 * 1024, 59);
  for (int iter = 0; iter < 3; ++iter) {
    const auto enc =
        pipeline.encode_file((dir.path / "input2.bin").string(), store_dir(dir));
    ASSERT_TRUE(enc.ok) << enc.error;
  }
  scrubber.stop();

  const auto dec = decode_store(dir, c);
  EXPECT_TRUE(dec.ok) << dec.error;
  EXPECT_EQ(read_all(dir.path / "output.bin"), fresh);
}

TEST(ScrubRepairTest, RepairRacesScrubOnTheSameStore) {
  const StoreCase c = fault_cases()[1];
  TempDir dir("race_repair");
  encode_store(dir, c, 64 * 1024, 60);
  const auto clean = device_contents(dir, c.cfg.n);
  const auto store = StripeStore::load(store_dir(dir));
  flip_bytes(dev_path(dir, 2), 0, c.symbol);
  flip_bytes(dev_path(dir, 5), store.chunk_offset(1) + c.symbol, 48);

  // Two scrubbers, one repairing and one scanning, race over the same
  // store. Repair writes are manifest-proven bytes, so the worst the
  // scanner can see is old-vs-new — both checksum-resolvable states.
  Codec codec(c.cfg);
  Scrubber repairer(codec, {.stripes_in_flight = 2});
  Scrubber scanner(codec, {.repair = false});
  scanner.start(store_dir(dir), std::chrono::milliseconds(0));
  ScrubReport rep;
  for (int pass = 0; pass < 3; ++pass) rep.accumulate(repairer.scrub(store_dir(dir)));
  scanner.stop();

  EXPECT_TRUE(rep.error.empty()) << rep.error;
  EXPECT_EQ(device_contents(dir, c.cfg.n), clean);
  const ScrubReport final_pass = Scrubber(codec, {}).scrub(store_dir(dir));
  EXPECT_EQ(final_pass.sectors_corrupt, 0u);
  EXPECT_EQ(final_pass.chunks_missing, 0u);
}

}  // namespace
}  // namespace stair
