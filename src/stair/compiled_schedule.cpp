#include "stair/compiled_schedule.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>

#include "gf/region.h"

namespace stair {

CompiledSchedule::CompiledSchedule(const Schedule& schedule, std::size_t strip_bytes)
    : forced_strip_(strip_bytes), w_(schedule.field().w()) {
  // id -> read? (ordered so touched_ ends up sorted by id)
  std::map<std::uint32_t, bool> touched;
  const gf::Field& f = schedule.field();
  ops_.reserve(schedule.ops().size());
  for (const auto& op : schedule.ops()) {
    Op compiled;
    compiled.output = op.output;
    touched.emplace(op.output, false);
    bool self_ref = false;
    for (const auto& term : op.terms) {
      if (term.coeff == 0) continue;  // contributes nothing under replay
      if (term.input == op.output) self_ref = true;
      compiled.terms.push_back({gf::compiled_kernel(f, term.coeff), term.input});
      // emplace, not assignment: an id first seen as an output keeps
      // read=false even if a later op reads it — the replay fully overwrites
      // it (per strip, in op order) before that read, so its pre-replay
      // bytes are dead and the inbound conversion can skip it. This covers
      // self-references too: a zero_fill op reads its output after the
      // memset, never the stale bytes.
      touched.emplace(term.input, true);
    }
    compiled.zero_fill = self_ref || compiled.terms.empty();
    ops_.push_back(std::move(compiled));
  }
  touched_.reserve(touched.size());
  for (const auto& [id, read] : touched) touched_.push_back({id, read});
}

std::size_t CompiledSchedule::mult_xor_count() const {
  std::size_t count = 0;
  for (const auto& op : ops_) count += op.terms.size();
  return count;
}

std::size_t CompiledSchedule::strip_size(std::size_t symbol_size) const {
  std::size_t strip = forced_strip_
                          ? forced_strip_
                          : gf::region_cache_budget() / std::max<std::size_t>(1, touched_.size());
  strip &= ~std::size_t{63};  // keep strips 64-byte-granular (symbol-aligned for all w)
  if (strip < 64) strip = 64;
  return std::min(strip, symbol_size);
}

void CompiledSchedule::execute(std::span<const std::span<std::uint8_t>> symbols,
                               gf::RegionLayout layout) const {
  if (ops_.empty()) return;
  execute_range(symbols, 0, symbols[ops_.front().output].size(), layout);
}

void CompiledSchedule::execute_range(std::span<const std::span<std::uint8_t>> symbols,
                                     std::size_t range_offset, std::size_t length,
                                     gf::RegionLayout layout) const {
  if (ops_.empty() || length == 0) return;
  assert(range_offset % 64 == 0);
  assert(range_offset + length <= symbols[ops_.front().output].size());
  const std::size_t strip = strip_size(length);

  for (std::size_t pos = 0; pos < length; pos += strip) {
    const std::size_t offset = range_offset + pos;
    const std::size_t len = std::min(strip, length - pos);
    for (const Op& op : ops_) {
      assert(op.output < symbols.size() &&
             symbols[op.output].size() >= range_offset + length);
      auto dst = symbols[op.output].subspan(offset, len);
      if (op.zero_fill) {
        std::memset(dst.data(), 0, len);
        for (const Term& term : op.terms) {
          assert(term.input < symbols.size() &&
                 symbols[term.input].size() >= range_offset + length);
          term.kernel->mult_xor(symbols[term.input].subspan(offset, len), dst, layout);
        }
        continue;
      }
      const Term& first = op.terms.front();
      assert(first.input < symbols.size() &&
             symbols[first.input].size() >= range_offset + length);
      first.kernel->mult(symbols[first.input].subspan(offset, len), dst, layout);
      for (std::size_t t = 1; t < op.terms.size(); ++t) {
        const Term& term = op.terms[t];
        assert(term.input < symbols.size() &&
               symbols[term.input].size() >= range_offset + length);
        term.kernel->mult_xor(symbols[term.input].subspan(offset, len), dst, layout);
      }
    }
  }
}

void CompiledSchedule::execute_range_converted(
    std::span<const std::span<std::uint8_t>> symbols,
    const std::vector<bool>& caller_owned, gf::RegionLayout layout, std::size_t offset,
    std::size_t length) const {
  if (layout == gf::RegionLayout::kStandard) {
    execute_range(symbols, offset, length);
    return;
  }
  convert_user_regions(symbols, caller_owned, layout, offset, length);
  execute_range(symbols, offset, length, layout);
  convert_user_regions(symbols, caller_owned, gf::RegionLayout::kStandard, offset, length);
}

void CompiledSchedule::convert_user_regions(std::span<const std::span<std::uint8_t>> symbols,
                                            const std::vector<bool>& caller_owned,
                                            gf::RegionLayout to, std::size_t offset,
                                            std::size_t length) const {
  if (w_ < 16 || length == 0) return;
  assert(offset % 64 == 0);
  const bool entering = to == gf::RegionLayout::kAltmap;
  const gf::RegionLayout from =
      entering ? gf::RegionLayout::kStandard : gf::RegionLayout::kAltmap;
  for (const Touched& t : touched_) {
    if (t.id >= caller_owned.size() || !caller_owned[t.id]) continue;
    if (entering && !t.read) continue;  // write-only: replay overwrites it anyway
    assert(symbols[t.id].size() >= offset + length);
    gf::convert_region(w_, from, to, symbols[t.id].subspan(offset, length));
  }
}

CompiledSchedule Schedule::compile(std::size_t strip_bytes) const {
  return CompiledSchedule(*this, strip_bytes);
}

}  // namespace stair
