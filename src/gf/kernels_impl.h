// Region-kernel bodies, compiled once per backend translation unit.
//
// Included by kernels_scalar.cpp / kernels_ssse3.cpp / kernels_avx2.cpp /
// kernels_gfni.cpp / kernels_avx512.cpp, each built with different ISA
// flags; the preprocessor selects the widest loop those flags allow, so one
// source yields five distinct binary kernel sets (the AVX-512 TU overrides
// the multiply entries with its own zmm loops and keeps this header's
// conversions and tails). Every function here is `static` on purpose:
// each TU must get its own copy compiled under its own flags — a shared
// inline definition would let the linker pick, say, the AVX2 instantiation
// for the scalar backend and fault on pre-AVX2 machines.
//
// Two layouts per width (see gf/region.h): the standard little-endian
// kernels, and the altmap kernels over planar 64-byte blocks that lift
// w = 16/32 to the same per-byte nibble-table (or GFNI affine) chain the
// byte-linear widths run. Altmap kernels process whole 64-byte blocks and
// hand the (standard-layout) tail to the scalar standard loop, matching the
// conversion kernels, which transform full blocks only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "gf/kernel.h"

#if defined(__SSSE3__)
#include <tmmintrin.h>
#endif
#if defined(__AVX2__) || defined(__GFNI__)
#include <immintrin.h>
#endif

namespace stair::gf::detail {

// ---------------------------------------------------------------------------
// Scalar loops, standard layout. Full kernels for the scalar backend; tail
// handlers (resuming at byte `i`) for the SIMD backends.
// ---------------------------------------------------------------------------

template <bool Accum>
static void scalar_w4(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n, std::size_t i = 0) {
  for (; i < n; ++i) {
    const std::uint8_t p = t.pack4[src[i]];
    dst[i] = Accum ? static_cast<std::uint8_t>(dst[i] ^ p) : p;
  }
}

template <bool Accum>
static void scalar_w8(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n, std::size_t i = 0) {
  const std::uint8_t* row = t.row8;
  for (; i < n; ++i) {
    const std::uint8_t p = row[src[i]];
    dst[i] = Accum ? static_cast<std::uint8_t>(dst[i] ^ p) : p;
  }
}

template <bool Accum>
static void scalar_w16(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n, std::size_t i = 0) {
  const std::uint16_t* lo = t.wide16.data();
  const std::uint16_t* hi = t.wide16.data() + 256;
  for (; i < n; i += 2) {
    std::uint16_t x;
    std::memcpy(&x, src + i, 2);
    std::uint16_t p = static_cast<std::uint16_t>(lo[x & 0xff] ^ hi[x >> 8]);
    if (Accum) {
      std::uint16_t d;
      std::memcpy(&d, dst + i, 2);
      p ^= d;
    }
    std::memcpy(dst + i, &p, 2);
  }
}

template <bool Accum>
static void scalar_w32(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n, std::size_t i = 0) {
  const std::uint32_t* tb = t.wide32.data();
  for (; i < n; i += 4) {
    std::uint32_t x;
    std::memcpy(&x, src + i, 4);
    std::uint32_t p = tb[x & 0xff] ^ tb[256 + ((x >> 8) & 0xff)] ^
                      tb[512 + ((x >> 16) & 0xff)] ^ tb[768 + (x >> 24)];
    if (Accum) {
      std::uint32_t d;
      std::memcpy(&d, dst + i, 4);
      p ^= d;
    }
    std::memcpy(dst + i, &p, 4);
  }
}

// ---------------------------------------------------------------------------
// Scalar loops, altmap layout — the bit-identical reference forms every SIMD
// altmap kernel is tested against, and the scalar backend's altmap kernels.
// A symbol's bytes live one per 16/32-byte plane of the 64-byte block; each
// iteration reassembles one symbol, multiplies through the wide tables, and
// scatters the product back planar. Aliasing (src == dst) is safe: symbol
// j's planar positions are read before they are written and no other
// symbol's positions are touched.
// ---------------------------------------------------------------------------

template <bool Accum>
static void scalar_altmap_w16(const KernelTables& t, const std::uint8_t* src,
                              std::uint8_t* dst, std::size_t n) {
  const std::uint16_t* lo = t.wide16.data();
  const std::uint16_t* hi = t.wide16.data() + 256;
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    for (std::size_t j = 0; j < 32; ++j) {
      const std::uint16_t x =
          static_cast<std::uint16_t>(src[i + j] | (src[i + 32 + j] << 8));
      const std::uint16_t p = static_cast<std::uint16_t>(lo[x & 0xff] ^ hi[x >> 8]);
      if (Accum) {
        dst[i + j] ^= static_cast<std::uint8_t>(p);
        dst[i + 32 + j] ^= static_cast<std::uint8_t>(p >> 8);
      } else {
        dst[i + j] = static_cast<std::uint8_t>(p);
        dst[i + 32 + j] = static_cast<std::uint8_t>(p >> 8);
      }
    }
  }
  scalar_w16<Accum>(t, src, dst, n, i);  // tail stays standard layout
}

template <bool Accum>
static void scalar_altmap_w32(const KernelTables& t, const std::uint8_t* src,
                              std::uint8_t* dst, std::size_t n) {
  const std::uint32_t* tb = t.wide32.data();
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    for (std::size_t j = 0; j < 16; ++j) {
      const std::uint32_t x = static_cast<std::uint32_t>(src[i + j]) |
                              (static_cast<std::uint32_t>(src[i + 16 + j]) << 8) |
                              (static_cast<std::uint32_t>(src[i + 32 + j]) << 16) |
                              (static_cast<std::uint32_t>(src[i + 48 + j]) << 24);
      const std::uint32_t p = tb[x & 0xff] ^ tb[256 + ((x >> 8) & 0xff)] ^
                              tb[512 + ((x >> 16) & 0xff)] ^ tb[768 + (x >> 24)];
      for (std::size_t b = 0; b < 4; ++b) {
        const std::uint8_t pb = static_cast<std::uint8_t>(p >> (8 * b));
        if (Accum)
          dst[i + 16 * b + j] ^= pb;
        else
          dst[i + 16 * b + j] = pb;
      }
    }
  }
  scalar_w32<Accum>(t, src, dst, n, i);
}

// ---------------------------------------------------------------------------
// Layout conversions. Full 64-byte blocks are transposed in place; the tail
// is untouched (it stays standard in both layouts). The scalar forms define
// the layout; the SIMD forms below must produce identical bytes.
// ---------------------------------------------------------------------------

static void noop_convert(std::uint8_t*, std::size_t) {}

[[maybe_unused]] static void scalar_to_altmap_w16(std::uint8_t* p, std::size_t n) {
  std::uint8_t tmp[64];
  for (std::size_t i = 0; i + 64 <= n; i += 64) {
    for (std::size_t j = 0; j < 32; ++j) {
      tmp[j] = p[i + 2 * j];
      tmp[32 + j] = p[i + 2 * j + 1];
    }
    std::memcpy(p + i, tmp, 64);
  }
}

[[maybe_unused]] static void scalar_from_altmap_w16(std::uint8_t* p, std::size_t n) {
  std::uint8_t tmp[64];
  for (std::size_t i = 0; i + 64 <= n; i += 64) {
    for (std::size_t j = 0; j < 32; ++j) {
      tmp[2 * j] = p[i + j];
      tmp[2 * j + 1] = p[i + 32 + j];
    }
    std::memcpy(p + i, tmp, 64);
  }
}

[[maybe_unused]] static void scalar_to_altmap_w32(std::uint8_t* p, std::size_t n) {
  std::uint8_t tmp[64];
  for (std::size_t i = 0; i + 64 <= n; i += 64) {
    for (std::size_t j = 0; j < 16; ++j)
      for (std::size_t b = 0; b < 4; ++b) tmp[16 * b + j] = p[i + 4 * j + b];
    std::memcpy(p + i, tmp, 64);
  }
}

[[maybe_unused]] static void scalar_from_altmap_w32(std::uint8_t* p, std::size_t n) {
  std::uint8_t tmp[64];
  for (std::size_t i = 0; i + 64 <= n; i += 64) {
    for (std::size_t j = 0; j < 16; ++j)
      for (std::size_t b = 0; b < 4; ++b) tmp[4 * j + b] = p[i + 16 * b + j];
    std::memcpy(p + i, tmp, 64);
  }
}

// ---------------------------------------------------------------------------
// 128-bit helpers shared by every SIMD backend (SSSE3 is a baseline of both
// the AVX2 and GFNI TUs): unaligned loads/stores, the pshufb conversion
// kernels (conversion is shuffle/transpose-bound, so xmm width is plenty),
// and single-64-byte-block altmap kernels the SSSE3 backend loops over and
// the wider backends use for odd trailing blocks.
// ---------------------------------------------------------------------------

#if defined(__SSSE3__) || defined(__AVX2__)

static inline __m128i loadu128(const std::uint8_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

static inline void storeu128(std::uint8_t* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

static inline __m128i load_table128(const std::uint8_t* table16) {
  return _mm_load_si128(reinterpret_cast<const __m128i*>(table16));
}

template <bool Accum>
static inline void store_prod128(std::uint8_t* dst, __m128i prod) {
  if (Accum) prod = _mm_xor_si128(prod, loadu128(dst));
  storeu128(dst, prod);
}

// w = 16 block: gather even (low) bytes then odd (high) bytes per vector,
// then recombine the 8-byte halves across vectors.
static void simd_to_altmap_w16(std::uint8_t* p, std::size_t n) {
  const __m128i sh =
      _mm_setr_epi8(0, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, 15);
  for (std::size_t i = 0; i + 64 <= n; i += 64) {
    const __m128i s0 = _mm_shuffle_epi8(loadu128(p + i), sh);
    const __m128i s1 = _mm_shuffle_epi8(loadu128(p + i + 16), sh);
    const __m128i s2 = _mm_shuffle_epi8(loadu128(p + i + 32), sh);
    const __m128i s3 = _mm_shuffle_epi8(loadu128(p + i + 48), sh);
    storeu128(p + i, _mm_unpacklo_epi64(s0, s1));
    storeu128(p + i + 16, _mm_unpacklo_epi64(s2, s3));
    storeu128(p + i + 32, _mm_unpackhi_epi64(s0, s1));
    storeu128(p + i + 48, _mm_unpackhi_epi64(s2, s3));
  }
}

static void simd_from_altmap_w16(std::uint8_t* p, std::size_t n) {
  for (std::size_t i = 0; i + 64 <= n; i += 64) {
    const __m128i l0 = loadu128(p + i), l1 = loadu128(p + i + 16);
    const __m128i h0 = loadu128(p + i + 32), h1 = loadu128(p + i + 48);
    storeu128(p + i, _mm_unpacklo_epi8(l0, h0));
    storeu128(p + i + 16, _mm_unpackhi_epi8(l0, h0));
    storeu128(p + i + 32, _mm_unpacklo_epi8(l1, h1));
    storeu128(p + i + 48, _mm_unpackhi_epi8(l1, h1));
  }
}

// w = 32 block: per-vector byte-significance sort (the 4x4 index transpose
// pattern is its own inverse), then a 4x4 dword transpose across vectors.
static void simd_to_altmap_w32(std::uint8_t* p, std::size_t n) {
  const __m128i sh =
      _mm_setr_epi8(0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15);
  for (std::size_t i = 0; i + 64 <= n; i += 64) {
    const __m128i s0 = _mm_shuffle_epi8(loadu128(p + i), sh);
    const __m128i s1 = _mm_shuffle_epi8(loadu128(p + i + 16), sh);
    const __m128i s2 = _mm_shuffle_epi8(loadu128(p + i + 32), sh);
    const __m128i s3 = _mm_shuffle_epi8(loadu128(p + i + 48), sh);
    const __m128i t0 = _mm_unpacklo_epi32(s0, s1), t1 = _mm_unpacklo_epi32(s2, s3);
    const __m128i t2 = _mm_unpackhi_epi32(s0, s1), t3 = _mm_unpackhi_epi32(s2, s3);
    storeu128(p + i, _mm_unpacklo_epi64(t0, t1));
    storeu128(p + i + 16, _mm_unpackhi_epi64(t0, t1));
    storeu128(p + i + 32, _mm_unpacklo_epi64(t2, t3));
    storeu128(p + i + 48, _mm_unpackhi_epi64(t2, t3));
  }
}

static void simd_from_altmap_w32(std::uint8_t* p, std::size_t n) {
  const __m128i sh =
      _mm_setr_epi8(0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15);
  for (std::size_t i = 0; i + 64 <= n; i += 64) {
    const __m128i p0 = loadu128(p + i), p1 = loadu128(p + i + 16);
    const __m128i p2 = loadu128(p + i + 32), p3 = loadu128(p + i + 48);
    const __m128i u0 = _mm_unpacklo_epi32(p0, p1), u1 = _mm_unpacklo_epi32(p2, p3);
    const __m128i u2 = _mm_unpackhi_epi32(p0, p1), u3 = _mm_unpackhi_epi32(p2, p3);
    storeu128(p + i, _mm_shuffle_epi8(_mm_unpacklo_epi64(u0, u1), sh));
    storeu128(p + i + 16, _mm_shuffle_epi8(_mm_unpackhi_epi64(u0, u1), sh));
    storeu128(p + i + 32, _mm_shuffle_epi8(_mm_unpacklo_epi64(u2, u3), sh));
    storeu128(p + i + 48, _mm_shuffle_epi8(_mm_unpackhi_epi64(u2, u3), sh));
  }
}

// One 64-byte altmap block, w = 16: symbols 0..15 in (lo bytes at +0, hi at
// +32), symbols 16..31 in (+16, +48). Each nibble position k of a symbol
// sits in a per-byte lane, so the product is four pshufb lookups per
// product byte — the same chain as w = 8, no 16-bit lane shifts.
template <bool Accum>
static inline void altmap_w16_block128(const KernelTables& t, const std::uint8_t* src,
                                       std::uint8_t* dst) {
  const __m128i mask = _mm_set1_epi8(0x0f);
  for (int half = 0; half < 2; ++half) {
    const __m128i lo_bytes = loadu128(src + 16 * half);
    const __m128i hi_bytes = loadu128(src + 32 + 16 * half);
    const __m128i idx[4] = {
        _mm_and_si128(lo_bytes, mask),
        _mm_and_si128(_mm_srli_epi64(lo_bytes, 4), mask),
        _mm_and_si128(hi_bytes, mask),
        _mm_and_si128(_mm_srli_epi64(hi_bytes, 4), mask)};
    __m128i out_lo = _mm_setzero_si128(), out_hi = _mm_setzero_si128();
    for (int k = 0; k < 4; ++k) {
      out_lo = _mm_xor_si128(out_lo, _mm_shuffle_epi8(load_table128(t.nib[k][0]), idx[k]));
      out_hi = _mm_xor_si128(out_hi, _mm_shuffle_epi8(load_table128(t.nib[k][1]), idx[k]));
    }
    store_prod128<Accum>(dst + 16 * half, out_lo);
    store_prod128<Accum>(dst + 32 + 16 * half, out_hi);
  }
}

// One 64-byte altmap block, w = 32: plane b (bytes [16b, 16b+16)) holds byte
// b of symbols 0..15; nibble position k = 2c (+1) comes from plane c. Eight
// lookups per product byte versus the 32-shuffles-per-vector dead end the
// standard layout forces (see the kernel_w32 note below).
template <bool Accum>
static inline void altmap_w32_block128(const KernelTables& t, const std::uint8_t* src,
                                       std::uint8_t* dst) {
  const __m128i mask = _mm_set1_epi8(0x0f);
  __m128i idx[8];
  for (int c = 0; c < 4; ++c) {
    const __m128i plane = loadu128(src + 16 * c);
    idx[2 * c] = _mm_and_si128(plane, mask);
    idx[2 * c + 1] = _mm_and_si128(_mm_srli_epi64(plane, 4), mask);
  }
  for (int b = 0; b < 4; ++b) {
    __m128i out = _mm_setzero_si128();
    for (int k = 0; k < 8; ++k)
      out = _mm_xor_si128(out, _mm_shuffle_epi8(load_table128(t.nib[k][b]), idx[k]));
    store_prod128<Accum>(dst + 16 * b, out);
  }
}

#endif  // __SSSE3__ || __AVX2__

// ---------------------------------------------------------------------------
// AVX2: 32 bytes per iteration, vpshufb over 128-bit-broadcast nibble tables.
// ---------------------------------------------------------------------------

#if defined(__AVX2__)

static inline __m256i bcast128(const std::uint8_t* table16) {
  return _mm256_broadcastsi128_si256(_mm_load_si128(reinterpret_cast<const __m128i*>(table16)));
}

static inline __m256i loadu256(const std::uint8_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

template <bool Accum>
static inline void store_prod256(std::uint8_t* dst, __m256i prod) {
  if (Accum) prod = _mm256_xor_si256(prod, loadu256(dst));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), prod);
}

// Two 16-byte plane halves of consecutive 64-byte altmap blocks, combined
// into one ymm so the w = 32 kernels run full width over pairs of blocks.
static inline __m256i load_planes(const std::uint8_t* block0, const std::uint8_t* block1) {
  return _mm256_inserti128_si256(_mm256_castsi128_si256(loadu128(block0)),
                                 loadu128(block1), 1);
}

template <bool Accum>
static inline void store_planes(std::uint8_t* block0, std::uint8_t* block1, __m256i prod) {
  if (Accum)
    prod = _mm256_xor_si256(prod, load_planes(block0, block1));
  storeu128(block0, _mm256_castsi256_si128(prod));
  storeu128(block1, _mm256_extracti128_si256(prod, 1));
}

#if defined(__GFNI__)

// GFNI: multiplication by a constant is an 8x8 GF(2) matrix per byte (any
// primitive polynomial), so GF2P8AFFINEQB computes 32 products in one
// instruction — w = 4 packs two independent 4x4 blocks into the same matrix.
template <bool Accum>
static inline void gfni_byte_linear(std::uint64_t matrix, const std::uint8_t* src,
                                    std::uint8_t* dst, std::size_t n, std::size_t& done) {
  const __m256i m = _mm256_set1_epi64x(static_cast<long long>(matrix));
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x = loadu256(src + i);
    store_prod256<Accum>(dst + i, _mm256_gf2p8affine_epi64_epi8(x, m, 0));
  }
  done = i;
}

template <bool Accum>
static void kernel_w4(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  std::size_t i = 0;
  gfni_byte_linear<Accum>(t.affine8, src, dst, n, i);
  scalar_w4<Accum>(t, src, dst, n, i);
}

template <bool Accum>
static void kernel_w8(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  std::size_t i = 0;
  gfni_byte_linear<Accum>(t.affine8, src, dst, n, i);
  scalar_w8<Accum>(t, src, dst, n, i);
}

// Composed-affine wide widths over altmap blocks: product byte b of a
// symbol is the XOR over source bytes c of the GF(2)-linear map
// affine_wide[b][c], and planar blocks put byte c of every symbol in its
// own lane, so a (w/8 x w/8) grid of GF2P8AFFINEQB ops covers w = 16/32 —
// 4 affines per 64 bytes at w = 16, 16 per 128 bytes at w = 32.
template <bool Accum>
static void kernel_w16_alt(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                           std::size_t n) {
  const __m256i m00 = _mm256_set1_epi64x(static_cast<long long>(t.affine_wide[0][0]));
  const __m256i m01 = _mm256_set1_epi64x(static_cast<long long>(t.affine_wide[0][1]));
  const __m256i m10 = _mm256_set1_epi64x(static_cast<long long>(t.affine_wide[1][0]));
  const __m256i m11 = _mm256_set1_epi64x(static_cast<long long>(t.affine_wide[1][1]));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i lo = loadu256(src + i), hi = loadu256(src + i + 32);
    store_prod256<Accum>(dst + i,
                         _mm256_xor_si256(_mm256_gf2p8affine_epi64_epi8(lo, m00, 0),
                                          _mm256_gf2p8affine_epi64_epi8(hi, m01, 0)));
    store_prod256<Accum>(dst + i + 32,
                         _mm256_xor_si256(_mm256_gf2p8affine_epi64_epi8(lo, m10, 0),
                                          _mm256_gf2p8affine_epi64_epi8(hi, m11, 0)));
  }
  scalar_w16<Accum>(t, src, dst, n, i);
}

template <bool Accum>
static void kernel_w32_alt(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                           std::size_t n) {
  __m256i m[4][4];
  for (int b = 0; b < 4; ++b)
    for (int c = 0; c < 4; ++c)
      m[b][c] = _mm256_set1_epi64x(static_cast<long long>(t.affine_wide[b][c]));
  std::size_t i = 0;
  for (; i + 128 <= n; i += 128) {
    __m256i plane[4];
    for (int c = 0; c < 4; ++c)
      plane[c] = load_planes(src + i + 16 * c, src + i + 64 + 16 * c);
    for (int b = 0; b < 4; ++b) {
      __m256i out = _mm256_gf2p8affine_epi64_epi8(plane[0], m[b][0], 0);
      for (int c = 1; c < 4; ++c)
        out = _mm256_xor_si256(out, _mm256_gf2p8affine_epi64_epi8(plane[c], m[b][c], 0));
      store_planes<Accum>(dst + i + 16 * b, dst + i + 64 + 16 * b, out);
    }
  }
  if (i + 64 <= n) {  // odd trailing block: the shared xmm shuffle block
    altmap_w32_block128<Accum>(t, src + i, dst + i);
    i += 64;
  }
  scalar_w32<Accum>(t, src, dst, n, i);
}

#else

// w = 4/8 share one shape: two 16-entry tables, one lookup per nibble. For
// w = 4, nib[1][0] holds the high-nibble product pre-shifted left 4 so the
// two pshufb results just OR/XOR together. Only the scalar tail differs
// between the widths.
template <bool Accum>
static void nib2_loop(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n, std::size_t& done) {
  const __m256i tlo = bcast128(t.nib[0][0]);
  const __m256i thi = bcast128(t.nib[1][0]);
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x = loadu256(src + i);
    const __m256i plo = _mm256_shuffle_epi8(tlo, _mm256_and_si256(x, mask));
    const __m256i phi =
        _mm256_shuffle_epi8(thi, _mm256_and_si256(_mm256_srli_epi64(x, 4), mask));
    store_prod256<Accum>(dst + i, _mm256_xor_si256(plo, phi));
  }
  done = i;
}

template <bool Accum>
static void kernel_w4(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  std::size_t i = 0;
  nib2_loop<Accum>(t, src, dst, n, i);
  scalar_w4<Accum>(t, src, dst, n, i);
}

template <bool Accum>
static void kernel_w8(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  std::size_t i = 0;
  nib2_loop<Accum>(t, src, dst, n, i);
  scalar_w8<Accum>(t, src, dst, n, i);
}

// Altmap w = 16: both planes of a 64-byte block fill whole ymm vectors, and
// every nibble position of a symbol sits in a per-byte lane, so the product
// is four vpshufb lookups per product byte — half the shuffles per byte of
// the standard w = 16 kernel below, with no lane shifts.
template <bool Accum>
static void kernel_w16_alt(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                           std::size_t n) {
  __m256i lo[4], hi[4];
  for (int k = 0; k < 4; ++k) {
    lo[k] = bcast128(t.nib[k][0]);
    hi[k] = bcast128(t.nib[k][1]);
  }
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i lo_bytes = loadu256(src + i), hi_bytes = loadu256(src + i + 32);
    const __m256i idx[4] = {
        _mm256_and_si256(lo_bytes, mask),
        _mm256_and_si256(_mm256_srli_epi64(lo_bytes, 4), mask),
        _mm256_and_si256(hi_bytes, mask),
        _mm256_and_si256(_mm256_srli_epi64(hi_bytes, 4), mask)};
    __m256i out_lo = _mm256_setzero_si256(), out_hi = _mm256_setzero_si256();
    for (int k = 0; k < 4; ++k) {
      out_lo = _mm256_xor_si256(out_lo, _mm256_shuffle_epi8(lo[k], idx[k]));
      out_hi = _mm256_xor_si256(out_hi, _mm256_shuffle_epi8(hi[k], idx[k]));
    }
    store_prod256<Accum>(dst + i, out_lo);
    store_prod256<Accum>(dst + i + 32, out_hi);
  }
  scalar_w16<Accum>(t, src, dst, n, i);
}

// Altmap w = 32: the 16-byte planes of two consecutive blocks combine into
// full ymm vectors (load_planes), then the same per-byte nibble chain —
// eight vpshufb per product byte per 128 bytes, where the standard layout
// is stuck on the scalar wide-table loop.
template <bool Accum>
static void kernel_w32_alt(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                           std::size_t n) {
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 128 <= n; i += 128) {
    __m256i idx[8];
    for (int c = 0; c < 4; ++c) {
      const __m256i plane = load_planes(src + i + 16 * c, src + i + 64 + 16 * c);
      idx[2 * c] = _mm256_and_si256(plane, mask);
      idx[2 * c + 1] = _mm256_and_si256(_mm256_srli_epi64(plane, 4), mask);
    }
    for (int b = 0; b < 4; ++b) {
      __m256i out = _mm256_setzero_si256();
      for (int k = 0; k < 8; ++k)
        out = _mm256_xor_si256(out, _mm256_shuffle_epi8(bcast128(t.nib[k][b]), idx[k]));
      store_planes<Accum>(dst + i + 16 * b, dst + i + 64 + 16 * b, out);
    }
  }
  if (i + 64 <= n) {  // odd trailing block: xmm width
    altmap_w32_block128<Accum>(t, src + i, dst + i);
    i += 64;
  }
  scalar_w32<Accum>(t, src, dst, n, i);
}

#endif  // __GFNI__

// w = 16, standard layout: nibble indices extracted in 16-bit lanes (odd
// bytes zero; every table maps 0 -> 0 so they contribute nothing), low/high
// product bytes looked up separately and recombined with a lane shift.
template <bool Accum>
static void kernel_w16(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n) {
  __m256i lo[4], hi[4];
  for (int k = 0; k < 4; ++k) {
    lo[k] = bcast128(t.nib[k][0]);
    hi[k] = bcast128(t.nib[k][1]);
  }
  const __m256i nibm = _mm256_set1_epi16(0x000f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x = loadu256(src + i);
    __m256i plo = _mm256_setzero_si256(), phi = _mm256_setzero_si256();
    const __m256i idx[4] = {
        _mm256_and_si256(x, nibm), _mm256_and_si256(_mm256_srli_epi16(x, 4), nibm),
        _mm256_and_si256(_mm256_srli_epi16(x, 8), nibm),
        _mm256_and_si256(_mm256_srli_epi16(x, 12), nibm)};
    for (int k = 0; k < 4; ++k) {
      plo = _mm256_xor_si256(plo, _mm256_shuffle_epi8(lo[k], idx[k]));
      phi = _mm256_xor_si256(phi, _mm256_shuffle_epi8(hi[k], idx[k]));
    }
    store_prod256<Accum>(dst + i, _mm256_xor_si256(plo, _mm256_slli_epi16(phi, 8)));
  }
  scalar_w16<Accum>(t, src, dst, n, i);
}

// w = 32, standard layout: the nibble-split shuffle needs 8 positions x 4
// product bytes = 32 table loads + shuffles + lane shifts per vector, which
// measures *slower* than the four 256-entry wide tables (~1.9 vs ~3.4 GB/s
// on AVX2 hardware), so every backend uses the scalar wide-table loop for
// this (layout, width) — the altmap kernels above are the vectorized path.
template <bool Accum>
static void kernel_w32(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n) {
  scalar_w32<Accum>(t, src, dst, n);
}

// ---------------------------------------------------------------------------
// SSSE3: same algorithms at 16 bytes per iteration (altmap kernels loop over
// the shared 64-byte block forms).
// ---------------------------------------------------------------------------

#elif defined(__SSSE3__)

// Shared two-nibble-table loop for w = 4/8; only the scalar tail differs.
template <bool Accum>
static void nib2_loop(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n, std::size_t& done) {
  const __m128i tlo = load_table128(t.nib[0][0]);
  const __m128i thi = load_table128(t.nib[1][0]);
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x = loadu128(src + i);
    const __m128i plo = _mm_shuffle_epi8(tlo, _mm_and_si128(x, mask));
    const __m128i phi = _mm_shuffle_epi8(thi, _mm_and_si128(_mm_srli_epi64(x, 4), mask));
    store_prod128<Accum>(dst + i, _mm_xor_si128(plo, phi));
  }
  done = i;
}

template <bool Accum>
static void kernel_w4(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  std::size_t i = 0;
  nib2_loop<Accum>(t, src, dst, n, i);
  scalar_w4<Accum>(t, src, dst, n, i);
}

template <bool Accum>
static void kernel_w8(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  std::size_t i = 0;
  nib2_loop<Accum>(t, src, dst, n, i);
  scalar_w8<Accum>(t, src, dst, n, i);
}

template <bool Accum>
static void kernel_w16(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n) {
  __m128i lo[4], hi[4];
  for (int k = 0; k < 4; ++k) {
    lo[k] = load_table128(t.nib[k][0]);
    hi[k] = load_table128(t.nib[k][1]);
  }
  const __m128i nibm = _mm_set1_epi16(0x000f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x = loadu128(src + i);
    const __m128i idx[4] = {_mm_and_si128(x, nibm),
                            _mm_and_si128(_mm_srli_epi16(x, 4), nibm),
                            _mm_and_si128(_mm_srli_epi16(x, 8), nibm),
                            _mm_and_si128(_mm_srli_epi16(x, 12), nibm)};
    __m128i plo = _mm_setzero_si128(), phi = _mm_setzero_si128();
    for (int k = 0; k < 4; ++k) {
      plo = _mm_xor_si128(plo, _mm_shuffle_epi8(lo[k], idx[k]));
      phi = _mm_xor_si128(phi, _mm_shuffle_epi8(hi[k], idx[k]));
    }
    store_prod128<Accum>(dst + i, _mm_xor_si128(plo, _mm_slli_epi16(phi, 8)));
  }
  scalar_w16<Accum>(t, src, dst, n, i);
}

// See the AVX2 note: the 32-shuffle nibble split loses to the wide tables
// for w = 32 in the standard layout, so the scalar loop is the kernel here
// too; the altmap kernel below is the vectorized path for this width.
template <bool Accum>
static void kernel_w32(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n) {
  scalar_w32<Accum>(t, src, dst, n);
}

template <bool Accum>
static void kernel_w16_alt(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                           std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) altmap_w16_block128<Accum>(t, src + i, dst + i);
  scalar_w16<Accum>(t, src, dst, n, i);
}

template <bool Accum>
static void kernel_w32_alt(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                           std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) altmap_w32_block128<Accum>(t, src + i, dst + i);
  scalar_w32<Accum>(t, src, dst, n, i);
}

// ---------------------------------------------------------------------------
// No SIMD flags: the scalar loops are the kernels for both layouts.
// ---------------------------------------------------------------------------

#else

template <bool Accum>
static void kernel_w4(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  scalar_w4<Accum>(t, src, dst, n);
}

template <bool Accum>
static void kernel_w8(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                      std::size_t n) {
  scalar_w8<Accum>(t, src, dst, n);
}

template <bool Accum>
static void kernel_w16(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n) {
  scalar_w16<Accum>(t, src, dst, n);
}

template <bool Accum>
static void kernel_w32(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                       std::size_t n) {
  scalar_w32<Accum>(t, src, dst, n);
}

template <bool Accum>
static void kernel_w16_alt(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                           std::size_t n) {
  scalar_altmap_w16<Accum>(t, src, dst, n);
}

template <bool Accum>
static void kernel_w32_alt(const KernelTables& t, const std::uint8_t* src, std::uint8_t* dst,
                           std::size_t n) {
  scalar_altmap_w32<Accum>(t, src, dst, n);
}

#endif

static KernelFns impl_kernel_fns() {
  constexpr int kStd = static_cast<int>(RegionLayout::kStandard);
  constexpr int kAlt = static_cast<int>(RegionLayout::kAltmap);
  KernelFns fns;
  fns.mult_xor[kStd][0] = kernel_w4<true>;
  fns.mult_xor[kStd][1] = kernel_w8<true>;
  fns.mult_xor[kStd][2] = kernel_w16<true>;
  fns.mult_xor[kStd][3] = kernel_w32<true>;
  fns.mult[kStd][0] = kernel_w4<false>;
  fns.mult[kStd][1] = kernel_w8<false>;
  fns.mult[kStd][2] = kernel_w16<false>;
  fns.mult[kStd][3] = kernel_w32<false>;
  // Byte-linear widths: the layouts coincide, altmap aliases standard.
  fns.mult_xor[kAlt][0] = kernel_w4<true>;
  fns.mult_xor[kAlt][1] = kernel_w8<true>;
  fns.mult_xor[kAlt][2] = kernel_w16_alt<true>;
  fns.mult_xor[kAlt][3] = kernel_w32_alt<true>;
  fns.mult[kAlt][0] = kernel_w4<false>;
  fns.mult[kAlt][1] = kernel_w8<false>;
  fns.mult[kAlt][2] = kernel_w16_alt<false>;
  fns.mult[kAlt][3] = kernel_w32_alt<false>;
  fns.to_altmap[0] = fns.to_altmap[1] = noop_convert;
  fns.from_altmap[0] = fns.from_altmap[1] = noop_convert;
#if defined(__SSSE3__) || defined(__AVX2__)
  fns.to_altmap[2] = simd_to_altmap_w16;
  fns.from_altmap[2] = simd_from_altmap_w16;
  fns.to_altmap[3] = simd_to_altmap_w32;
  fns.from_altmap[3] = simd_from_altmap_w32;
#else
  fns.to_altmap[2] = scalar_to_altmap_w16;
  fns.from_altmap[2] = scalar_from_altmap_w16;
  fns.to_altmap[3] = scalar_to_altmap_w32;
  fns.from_altmap[3] = scalar_from_altmap_w32;
#endif
  return fns;
}

}  // namespace stair::gf::detail
