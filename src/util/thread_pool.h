// Persistent worker-thread pool — the parallel execution engine.
//
// The seed's execute_parallel spawned std::threads on every call, so a
// megabyte-stripe encode paid thread creation and teardown (tens of
// microseconds each) per stripe — the classic per-call setup cost the
// GF-Complete/Jerasure lineage amortizes away for tables and plans. This
// pool amortizes it for threads: workers are created once, parked on a
// condition variable, and reused by every parallel region in the process.
//
// The model is deliberately simple (no work stealing, no futures on the hot
// path): parallel_for(count, fn) runs fn(0..count-1) across the workers AND
// the calling thread, which claim indices from a shared atomic counter and
// block until the whole batch has retired. The caller participating means a
// pool with zero workers (single-core machine, STAIR_THREADS=1) degrades to
// a plain serial loop with no synchronization beyond one atomic.
//
// Sizing: the process-wide default_pool() is sized from
// hardware_concurrency(), overridable with STAIR_THREADS=<n> (total
// concurrency including the caller). Tests construct private pools.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace stair {

class ThreadPool {
 public:
  /// `concurrency` = total parallel participants (workers + the caller of
  /// parallel_for), so a ThreadPool(4) spawns 3 workers. 0 resolves the
  /// process default: STAIR_THREADS if set and positive, else
  /// hardware_concurrency().
  explicit ThreadPool(std::size_t concurrency = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads owned by the pool (constant for the pool's lifetime).
  std::size_t size() const { return workers_.size(); }
  /// size() + 1: the caller participates in every parallel_for.
  std::size_t concurrency() const { return workers_.size() + 1; }

  /// Runs fn(i) for every i in [0, count), using at most `max_participants`
  /// threads (capped by concurrency(); 0 = no cap). Blocks until every index
  /// has retired. If any invocation throws, the first exception is rethrown
  /// here after the batch drains (remaining indices are skipped, not run).
  /// Reentrant from worker threads is NOT supported; concurrent calls from
  /// distinct external threads are.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                    std::size_t max_participants = 0);

  /// Enqueues `fn` to run once on a pool worker and returns immediately — the
  /// fire-and-forget counterpart of parallel_for, and the primitive the Codec
  /// stripe-batch pipeline builds completion handles on. The caller does NOT
  /// automatically participate (completion signalling is the submitter's
  /// business); a caller that would otherwise block should spin try_run_one()
  /// to contribute its core, which is how Codec waits keep submit-based
  /// pipelines at full concurrency(). On a pool with zero workers
  /// (concurrency 1) `fn` runs inline before returning, so pipelines degrade
  /// to synchronous execution instead of deadlocking. Tasks still queued at
  /// destruction are drained by the workers before they exit. `fn` must not
  /// let exceptions escape (they would terminate the worker); wrap the body
  /// if it can throw.
  void submit(std::function<void()> fn);

  /// Pops and runs one queued work item (a submit() task or a helper slot of
  /// a parallel_for batch) on the calling thread. Returns false when nothing
  /// was queued. This is the caller-participation primitive for code waiting
  /// on submit()-based completions: an about-to-block thread is an idle
  /// core, so it helps drain the queue instead of parking.
  bool try_run_one();

  /// Total indices retired by all parallel_for batches (pool-lifetime stat;
  /// lets tests assert thousands of submits reuse the same workers).
  std::uint64_t indices_run() const { return indices_run_.load(std::memory_order_relaxed); }
  /// Total parallel_for batches completed.
  std::uint64_t batches_run() const { return batches_run_.load(std::memory_order_relaxed); }
  /// Total submit() tasks that have finished running.
  std::uint64_t tasks_run() const { return tasks_run_.load(std::memory_order_relaxed); }

  /// The process-wide shared pool (created on first use, default-sized).
  static ThreadPool& default_pool();

  /// The concurrency default_pool() is (or would be) created with:
  /// STAIR_THREADS if set and positive, else hardware_concurrency(), min 1.
  /// Reads the environment on every call; default_pool() snapshots it once.
  static std::size_t default_concurrency();

  /// Pure resolution rule behind default_concurrency(), exposed for tests:
  /// parse `env_value` (may be null); positive values win, anything else
  /// falls back to `hardware` (itself floored at 1).
  static std::size_t resolve_concurrency(const char* env_value, std::size_t hardware);

 private:
  // One parallel_for call. Participants claim indices via `next`; each
  // accumulates its retired count locally and folds it into `done` under
  // `mu` when it stops, so the caller's wait sees a consistent total.
  struct Batch {
    Batch(std::size_t n, const std::function<void(std::size_t)>& f) : count(n), fn(f) {}
    const std::size_t count;
    const std::function<void(std::size_t)>& fn;  // outlives the batch: the
    // caller blocks in parallel_for until every index retires.
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex mu;
    std::condition_variable cv;
    std::size_t done = 0;  // guarded by mu
    std::exception_ptr error;  // guarded by mu; first failure wins
  };

  // One queue entry: either a helper slot for a parallel_for batch or an
  // owned one-shot submit() task (exactly one of the two is set).
  struct Entry {
    std::shared_ptr<Batch> batch;
    std::function<void()> task;
  };

  void worker_loop();
  void drain(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Entry> queue_;
  bool stop_ = false;
  std::atomic<std::uint64_t> indices_run_{0};
  std::atomic<std::uint64_t> batches_run_{0};
  std::atomic<std::uint64_t> tasks_run_{0};
};

}  // namespace stair
