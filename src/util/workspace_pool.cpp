#include "util/workspace_pool.h"

#include <cstdlib>
#include <new>

namespace stair::detail {

std::size_t PoolCore::acquire_locked() {
  acquired_.fetch_add(1, std::memory_order_relaxed);
  if (free_.empty()) return kGrow;
  const std::size_t slot = free_.back();
  free_.pop_back();
  reused_.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

std::size_t PoolCore::register_locked() { return created_++; }

void PoolCore::release(std::size_t slot) {
  std::lock_guard<std::mutex> guard(mu_);
  free_.push_back(slot);
}

std::size_t PoolCore::created() const {
  std::lock_guard<std::mutex> guard(mu_);
  return created_;
}

std::size_t PoolCore::in_use() const {
  std::lock_guard<std::mutex> guard(mu_);
  return created_ - free_.size();
}

}  // namespace stair::detail

namespace stair {

namespace {

std::size_t round_up(std::size_t v, std::size_t a) { return (v + a - 1) / a * a; }

}  // namespace

IoBufferPool::State::~State() {
  for (auto& slot : slots) std::free(slot->data);
}

std::unique_ptr<IoBuffer> IoBufferPool::make_slot(int index) const {
  // aligned_alloc requires size to be a multiple of alignment; bytes_ was
  // rounded up in the constructor.
  void* mem = std::aligned_alloc(alignment_, bytes_);
  if (!mem) throw std::bad_alloc();
  auto slot = std::make_unique<IoBuffer>();
  slot->data = static_cast<std::uint8_t*>(mem);
  slot->bytes = bytes_;
  slot->index = index;
  return slot;
}

IoBufferPool::IoBufferPool(std::size_t buffer_bytes, std::size_t alignment,
                                     std::size_t registered_capacity)
    : alignment_(alignment ? alignment : 1),
      bytes_(round_up(buffer_bytes ? buffer_bytes : 1, alignment ? alignment : 1)),
      capacity_(registered_capacity),
      state_(std::make_shared<State>()) {
  // Pre-create the registrable set so regions() is stable for the engine's
  // one-shot IORING_REGISTER_BUFFERS call, then park every slot on the
  // free-list.
  {
    auto lock = state_->core.lock();
    for (std::size_t i = 0; i < capacity_; ++i) {
      state_->slots.push_back(make_slot(static_cast<int>(i)));
      state_->core.register_locked();
    }
  }
  for (std::size_t i = 0; i < capacity_; ++i) state_->core.release(i);
}

IoBufferPool::Lease IoBufferPool::acquire() {
  std::shared_ptr<State> state = state_;
  IoBuffer* buf = nullptr;
  std::size_t slot;
  {
    auto lock = state->core.lock();
    slot = state->core.acquire_locked();
    if (slot == detail::PoolCore::kGrow) {
      // Registered set exhausted: overflow buffers are still aligned (so
      // O_DIRECT keeps working) but carry index -1, downgrading their
      // transfers to the unregistered path — counted, never an error.
      state->slots.push_back(make_slot(-1));
      slot = state->core.register_locked();
      overflow_.fetch_add(1, std::memory_order_relaxed);
    }
    buf = state->slots[slot].get();
  }
  // The deleter keeps the whole backing store alive (see WorkspacePool).
  return Lease(buf, [state, slot](IoBuffer*) { state->core.release(slot); });
}

std::vector<std::span<std::uint8_t>> IoBufferPool::regions() const {
  std::vector<std::span<std::uint8_t>> out;
  out.reserve(capacity_);
  auto lock = state_->core.lock();  // slots may grow concurrently (overflow)
  for (std::size_t i = 0; i < capacity_; ++i) out.push_back(state_->slots[i]->span());
  return out;
}

}  // namespace stair
